// Tests for the collective operations built on the reliable multicast API:
// broadcast, barrier, scatter, and the decentralised all-gather.
#include <gtest/gtest.h>

#include "collectives/allgather.h"
#include "collectives/allreduce.h"
#include "collectives/broadcast.h"
#include "collectives/scatter.h"
#include "protocol_test_util.h"

namespace rmc::collectives {
namespace {

using test::config_for;
using test::pattern;
using test::ProtocolHarness;

TEST(Broadcast, DeliversToEveryMember) {
  ProtocolHarness h(5, config_for(rmcast::ProtocolKind::kNakPolling));
  Broadcaster bcast(h.sender());
  Buffer data = pattern(50'000);
  bool done = false;
  bcast.broadcast(BytesView(data.data(), data.size()), [&] { done = true; });
  h.run_until_done(done, sim::seconds(30.0));
  ASSERT_TRUE(done);
  h.expect_all_delivered({data});
  EXPECT_EQ(bcast.broadcasts_completed(), 1u);
}

TEST(Broadcast, BarrierCompletesOnceAllMembersRespond) {
  ProtocolHarness h(5, config_for(rmcast::ProtocolKind::kAck));
  Broadcaster bcast(h.sender());
  bool done = false;
  bcast.barrier([&] { done = true; });
  h.run_until_done(done, sim::seconds(30.0));
  ASSERT_TRUE(done);
  // Every member answered the (empty) broadcast's allocation handshake.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(h.receiver(i).stats().alloc_responses_sent, 1u);
  }
}

TEST(Scatter, PackExtractRoundTrip) {
  std::vector<Buffer> chunks = {pattern(10), pattern(500), Buffer{}, pattern(3)};
  Buffer packed = scatter_pack(chunks);
  for (std::size_t rank = 0; rank < chunks.size(); ++rank) {
    auto got = scatter_extract(BytesView(packed.data(), packed.size()), rank);
    ASSERT_TRUE(got.has_value()) << rank;
    EXPECT_EQ(*got, chunks[rank]) << rank;
  }
  EXPECT_FALSE(
      scatter_extract(BytesView(packed.data(), packed.size()), chunks.size()).has_value());
  Buffer junk{1, 2};
  EXPECT_FALSE(scatter_extract(BytesView(junk.data(), junk.size()), 0).has_value());
}

TEST(Scatter, EndToEndEachReceiverGetsItsSlice) {
  const std::size_t n = 4;
  ProtocolHarness h(n, config_for(rmcast::ProtocolKind::kRing));
  std::vector<Buffer> chunks;
  for (std::size_t i = 0; i < n; ++i) chunks.push_back(pattern(1000 * (i + 1)));

  Scatterer scatterer(h.sender());
  std::vector<Buffer> got(n);
  for (std::size_t i = 0; i < n; ++i) {
    h.receiver(i).set_message_handler(
        [&, i](const Buffer& message, std::uint32_t) {
          auto slice = scatter_extract(BytesView(message.data(), message.size()), i);
          ASSERT_TRUE(slice.has_value());
          got[i] = *slice;
        });
  }
  bool done = false;
  scatterer.scatter(chunks, [&] { done = true; });
  h.run_until_done(done, sim::seconds(30.0));
  ASSERT_TRUE(done);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(got[i], chunks[i]) << "rank " << i;
}

// All-gather needs one multicast group per rank: build them by hand on one
// cluster.
class AllgatherFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kRanks = 3;

  AllgatherFixture() : cluster_(make_params()) {
    for (std::size_t r = 0; r < kRanks; ++r) {
      runtimes_.push_back(std::make_unique<rt::SimRuntime>(cluster_.host(r)));
    }
    // Group g: rank g multicasts to every other rank.
    for (std::size_t g = 0; g < kRanks; ++g) {
      rmcast::GroupMembership m;
      m.group = {net::Ipv4Addr(239, 0, 0, static_cast<std::uint8_t>(g + 1)),
                 static_cast<std::uint16_t>(5000 + g)};
      m.sender_control = {inet::Cluster::host_addr(g),
                          static_cast<std::uint16_t>(6000 + g)};
      for (std::size_t r = 0; r < kRanks; ++r) {
        if (r == g) continue;
        m.receiver_control.push_back(
            {inet::Cluster::host_addr(r), static_cast<std::uint16_t>(7000 + g)});
      }
      memberships_.push_back(m);
    }

    auto config = config_for(rmcast::ProtocolKind::kAck);
    for (std::size_t r = 0; r < kRanks; ++r) {
      // Rank r's sender on its own group.
      inet::Socket* raw = cluster_.host(r).open_socket();
      raw->bind(memberships_[r].sender_control.port);
      sender_sockets_.push_back(runtimes_[r]->wrap(raw));
      senders_.push_back(std::make_unique<rmcast::MulticastSender>(
          *runtimes_[r], *sender_sockets_[r], memberships_[r], config));

      // Rank r's receivers on everyone else's groups.
      std::vector<rmcast::MulticastReceiver*> receivers(kRanks, nullptr);
      for (std::size_t g = 0; g < kRanks; ++g) {
        if (g == r) continue;
        inet::Socket* data = cluster_.host(r).open_socket();
        data->bind(memberships_[g].group.port);
        data->join(memberships_[g].group.addr);
        data_sockets_.push_back(runtimes_[r]->wrap(data));

        inet::Socket* control = cluster_.host(r).open_socket();
        control->bind(static_cast<std::uint16_t>(7000 + g));
        control_sockets_.push_back(runtimes_[r]->wrap(control));

        std::size_t node_id = r < g ? r : r - 1;
        receiver_objects_.push_back(std::make_unique<rmcast::MulticastReceiver>(
            *runtimes_[r], *data_sockets_.back(), *control_sockets_.back(),
            memberships_[g], node_id, config));
        receivers[g] = receiver_objects_.back().get();
      }
      nodes_.push_back(std::make_unique<AllgatherNode>(r, *senders_[r], receivers));
    }
  }

  static inet::ClusterParams make_params() {
    inet::ClusterParams p;
    p.n_hosts = kRanks;
    p.wiring = inet::Wiring::kSingleSwitch;
    return p;
  }

  inet::Cluster cluster_;
  std::vector<std::unique_ptr<rt::SimRuntime>> runtimes_;
  std::vector<rmcast::GroupMembership> memberships_;
  std::vector<std::unique_ptr<rt::UdpSocket>> sender_sockets_;
  std::vector<std::unique_ptr<rt::UdpSocket>> data_sockets_;
  std::vector<std::unique_ptr<rt::UdpSocket>> control_sockets_;
  std::vector<std::unique_ptr<rmcast::MulticastSender>> senders_;
  std::vector<std::unique_ptr<rmcast::MulticastReceiver>> receiver_objects_;
  std::vector<std::unique_ptr<AllgatherNode>> nodes_;
};

TEST(Allreduce, PackUnpackRoundTrip) {
  std::vector<double> values = {0.0, -1.5, 3.25e300, 1e-300,
                                std::numeric_limits<double>::infinity()};
  Buffer packed = pack_doubles(values);
  EXPECT_EQ(packed.size(), values.size() * 8);
  EXPECT_EQ(unpack_doubles(BytesView(packed.data(), packed.size())), values);
  Buffer truncated(packed.begin(), packed.begin() + 7);
  EXPECT_TRUE(unpack_doubles(BytesView(truncated.data(), truncated.size())).empty());
}

TEST(Allreduce, ReduceVectorOps) {
  std::vector<std::vector<double>> inputs = {{1, 5, -2}, {4, 2, -8}, {0, 7, 3}};
  EXPECT_EQ(reduce_vectors(inputs, ReduceOp::kSum), (std::vector<double>{5, 14, -7}));
  EXPECT_EQ(reduce_vectors(inputs, ReduceOp::kMin), (std::vector<double>{0, 2, -8}));
  EXPECT_EQ(reduce_vectors(inputs, ReduceOp::kMax), (std::vector<double>{4, 7, 3}));
  // Shape mismatch is an application bug, surfaced as empty.
  inputs.push_back({1});
  EXPECT_TRUE(reduce_vectors(inputs, ReduceOp::kSum).empty());
  EXPECT_TRUE(reduce_vectors({}, ReduceOp::kSum).empty());
}

TEST_F(AllgatherFixture, AllreduceSumsAcrossRanks) {
  std::vector<std::vector<double>> contributions = {
      {1.0, 2.0, 3.0}, {10.0, 20.0, 30.0}, {100.0, 200.0, 300.0}};
  std::vector<AllreduceNode> reducers;
  reducers.reserve(kRanks);
  for (std::size_t r = 0; r < kRanks; ++r) reducers.emplace_back(*nodes_[r]);

  std::vector<std::vector<double>> results(kRanks);
  std::size_t completions = 0;
  for (std::size_t r = 0; r < kRanks; ++r) {
    reducers[r].run(contributions[r], ReduceOp::kSum,
                    [&, r](const std::vector<double>& result) {
                      results[r] = result;
                      ++completions;
                    });
  }
  while (completions < kRanks && cluster_.simulator().now() < sim::seconds(30.0)) {
    if (!cluster_.simulator().step()) break;
  }
  ASSERT_EQ(completions, kRanks);
  for (std::size_t r = 0; r < kRanks; ++r) {
    EXPECT_EQ(results[r], (std::vector<double>{111.0, 222.0, 333.0})) << "rank " << r;
  }
}

TEST_F(AllgatherFixture, EveryRankGathersAllChunks) {
  std::vector<Buffer> chunks = {pattern(1000), pattern(2500), pattern(700)};
  std::vector<std::vector<Buffer>> gathered(kRanks);
  std::size_t completions = 0;
  for (std::size_t r = 0; r < kRanks; ++r) {
    nodes_[r]->run(BytesView(chunks[r].data(), chunks[r].size()),
                   [&, r](const std::vector<Buffer>& all) {
                     gathered[r] = all;
                     ++completions;
                   });
  }
  while (completions < kRanks && cluster_.simulator().now() < sim::seconds(30.0)) {
    if (!cluster_.simulator().step()) break;
  }
  ASSERT_EQ(completions, kRanks);
  for (std::size_t r = 0; r < kRanks; ++r) {
    ASSERT_EQ(gathered[r].size(), kRanks);
    for (std::size_t g = 0; g < kRanks; ++g) {
      EXPECT_EQ(gathered[r][g], chunks[g]) << "rank " << r << " chunk " << g;
    }
    EXPECT_TRUE(nodes_[r]->done());
  }
}

}  // namespace
}  // namespace rmc::collectives
