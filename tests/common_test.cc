// Unit tests for rmc_common: serialization, RNG, statistics, strings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>

#include "common/rng.h"
#include "common/serial.h"
#include "common/stats.h"
#include "common/strings.h"

namespace rmc {
namespace {

TEST(Serial, RoundTripsAllWidths) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  Buffer raw{1, 2, 3};
  w.bytes(BytesView(raw.data(), raw.size()));

  Reader r(BytesView(w.buffer().data(), w.buffer().size()));
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  BytesView tail = r.bytes(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[2], 3);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serial, BigEndianOnTheWire) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.buffer()[0], 0x01);
  EXPECT_EQ(w.buffer()[3], 0x04);
}

TEST(Serial, UnderrunClearsOkAndReturnsZero) {
  Buffer two{0xFF, 0xFF};
  Reader r(BytesView(two.data(), two.size()));
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
  // Every subsequent read stays failed.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_TRUE(r.bytes(1).empty());
}

TEST(Serial, BytesUnderrunReturnsEmpty) {
  Buffer three{1, 2, 3};
  Reader r(BytesView(three.data(), three.size()));
  EXPECT_TRUE(r.bytes(4).empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serial, EmptyReaderIsOkUntilRead) {
  Reader r(BytesView{});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
  r.u8();
  EXPECT_FALSE(r.ok());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  bool all_equal = true;
  bool any_differs_from_c = false;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t va = a.next();
    if (va != b.next()) all_equal = false;
    if (va != c.next()) any_differs_from_c = true;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differs_from_c);
}

TEST(Rng, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversRangeRoughlyEvenly) {
  Rng rng(11);
  std::map<std::uint64_t, int> histogram;
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++histogram[rng.uniform(8)];
  ASSERT_EQ(histogram.size(), 8u);
  for (const auto& [value, count] : histogram) {
    EXPECT_NEAR(count, n / 8, n / 40) << "bucket " << value;
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits, n / 4, n / 100);
}

TEST(RunningStat, MatchesDirectComputation) {
  RunningStat stat;
  const double values[] = {4.0, 7.0, 13.0, 16.0};
  for (double v : values) stat.add(v);
  EXPECT_EQ(stat.count(), 4u);
  EXPECT_DOUBLE_EQ(stat.mean(), 10.0);
  EXPECT_DOUBLE_EQ(stat.min(), 4.0);
  EXPECT_DOUBLE_EQ(stat.max(), 16.0);
  EXPECT_NEAR(stat.variance(), 30.0, 1e-9);  // sample variance
  EXPECT_NEAR(stat.stddev(), std::sqrt(30.0), 1e-9);
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat stat;
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
  stat.add(5.0);
  EXPECT_EQ(stat.mean(), 5.0);
  EXPECT_EQ(stat.variance(), 0.0);
  EXPECT_EQ(stat.min(), 5.0);
  EXPECT_EQ(stat.max(), 5.0);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
  EXPECT_DOUBLE_EQ(s.mean(), 25.0);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 40.0);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.percentile(37.0), 3.5);
}

TEST(Counter, SaturatesAtMax) {
  Counter c;
  c.inc();
  EXPECT_EQ(c.value, 1u);
  c.inc(5);
  EXPECT_EQ(c.value, 6u);

  c.value = UINT64_MAX - 1;
  c.inc();
  EXPECT_EQ(c.value, UINT64_MAX);
  c.inc();  // pegged: sticks at the ceiling instead of wrapping to 0
  EXPECT_EQ(c.value, UINT64_MAX);
  c.inc(12345);
  EXPECT_EQ(c.value, UINT64_MAX);

  Counter big;
  big.inc(UINT64_MAX);
  EXPECT_EQ(big.value, UINT64_MAX);
  big.value = 10;
  big.inc(UINT64_MAX - 5);  // overflowing increment also saturates
  EXPECT_EQ(big.value, UINT64_MAX);
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(500), "500B");
  EXPECT_EQ(format_bytes(1536), "1.5KB");
  EXPECT_EQ(format_bytes(2 * 1024 * 1024), "2.0MB");
}

TEST(Strings, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.000123), "123.0us");
  EXPECT_EQ(format_seconds(0.05), "50.00ms");
  EXPECT_EQ(format_seconds(1.5), "1.500s");
}

TEST(Strings, FormatRate) {
  EXPECT_EQ(format_rate(89.7e6), "89.7Mbps");
  EXPECT_EQ(format_rate(500), "500bps");
  EXPECT_EQ(format_rate(2.5e9), "2.50Gbps");
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(str_format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(str_format("%s", ""), "");
}

}  // namespace
}  // namespace rmc
