// Cross-run and cross-core determinism.
//
// The repo's experimental claims all rest on one property: a run is a pure
// function of its configuration and seed. This suite pins that property
// end-to-end, for every protocol the paper studies, on BOTH event cores:
//
//   * same seed, same core, run twice  -> identical metrics snapshot
//     (full JSON), identical control-message trace (timestamps included),
//     identical stats and event counts;
//   * pooled wheel vs legacy heap      -> identical everything, proving
//     the fast-path event core is observationally indistinguishable from
//     the reference implementation even under loss and injected faults.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "harness/experiment.h"
#include "harness/tenant.h"
#include "harness/trace.h"
#include "sim/simulator.h"

namespace rmc::rmcast {
namespace {

constexpr ProtocolKind kAllKinds[] = {
    ProtocolKind::kAck,      ProtocolKind::kNakPolling, ProtocolKind::kRing,
    ProtocolKind::kFlatTree, ProtocolKind::kBinaryTree, ProtocolKind::kEcXor,
    ProtocolKind::kEcRs};

// Table 2 tunings, shrunk to a 12-receiver 120KB transfer so the full
// 7-protocol × 2-core × repeated-run matrix stays fast under sanitizers.
// The EC kinds ride the same matrix: their parity emission, deferred
// decode and GROUP_NAK fallback must be as replayable as the ARQ paths.
ProtocolConfig small_config(ProtocolKind kind) {
  ProtocolConfig c;
  c.kind = kind;
  c.packet_size = 8000;
  c.window_size = kind == ProtocolKind::kRing ? 40 : 20;
  if (kind == ProtocolKind::kNakPolling) c.poll_interval = 12;
  if (kind == ProtocolKind::kFlatTree) c.tree_height = 4;
  if (is_fec_protocol(kind)) {
    c.fec.k = kind == ProtocolKind::kEcXor ? 8 : 12;
    c.fec.m = kind == ProtocolKind::kEcXor ? 1 : 3;
    c.window_size = c.fec.group_size() + 4;
    c.selective_repeat = true;
    c.receiver_driven_timeouts = true;
  }
  return c;
}

struct Capture {
  harness::RunResult result;
  std::string metrics_json;
  std::vector<harness::TraceRecorder::Event> trace;
  trace::Tracer tracer;  // full causal trace, tags and timelines included
};

Capture capture_run(ProtocolKind kind, sim::EventCoreKind core,
                    std::uint64_t seed, double frame_error_rate,
                    const sim::FaultPlan& faults = {}) {
  const sim::EventCoreKind previous = sim::default_event_core();
  sim::set_default_event_core(core);

  metrics::Registry registry;
  Capture cap;
  harness::MulticastRunSpec spec;
  spec.n_receivers = 12;
  spec.message_bytes = 120'000;
  spec.protocol = small_config(kind);
  spec.seed = seed;
  spec.cluster.link.frame_error_rate = frame_error_rate;
  spec.faults = faults;
  if (!faults.empty()) {
    // Fault runs stall on the faulted receiver unless eviction is on.
    spec.protocol.max_retransmit_rounds = 5;
  }
  spec.metrics = &registry;
  spec.sender_trace = &cap.trace;
  spec.tracer = &cap.tracer;
  cap.result = harness::run_multicast(spec);
  cap.metrics_json = registry.to_json();

  sim::set_default_event_core(previous);
  return cap;
}

void expect_identical(const Capture& x, const Capture& y, const char* label) {
  ASSERT_TRUE(x.result.completed) << label << ": " << x.result.error;
  ASSERT_TRUE(y.result.completed) << label << ": " << y.result.error;
  // The clock itself: bit-identical, not approximately equal.
  EXPECT_EQ(x.result.seconds, y.result.seconds) << label;
  EXPECT_EQ(x.result.events_executed, y.result.events_executed) << label;
  EXPECT_EQ(x.result.sender.data_packets_sent, y.result.sender.data_packets_sent)
      << label;
  EXPECT_EQ(x.result.sender.retransmissions, y.result.sender.retransmissions)
      << label;
  EXPECT_EQ(x.result.sender.acks_received, y.result.sender.acks_received) << label;
  EXPECT_EQ(x.result.sender.naks_received, y.result.sender.naks_received) << label;
  EXPECT_EQ(x.result.total_acks_sent(), y.result.total_acks_sent()) << label;
  EXPECT_EQ(x.result.total_naks_sent(), y.result.total_naks_sent()) << label;
  EXPECT_EQ(x.result.rcvbuf_drops, y.result.rcvbuf_drops) << label;
  EXPECT_EQ(x.result.link_drops, y.result.link_drops) << label;
  EXPECT_EQ(x.result.fault_drops, y.result.fault_drops) << label;
  // The full metrics snapshot — every counter, gauge and histogram the
  // observability layer publishes, in one string compare.
  EXPECT_EQ(x.metrics_json, y.metrics_json) << label;
  // The control-message trace: same packets, same order, same timestamps.
  ASSERT_EQ(x.trace.size(), y.trace.size()) << label;
  EXPECT_TRUE(x.trace == y.trace) << label;
  // The causal trace — every hook in the protocol, net and timeline tiers,
  // with integer nanosecond timestamps — must also match bit-for-bit.
  ASSERT_EQ(x.tracer.events().size(), y.tracer.events().size()) << label;
  EXPECT_TRUE(x.tracer.same_as(y.tracer)) << label;
}

class Determinism : public ::testing::TestWithParam<sim::EventCoreKind> {};

INSTANTIATE_TEST_SUITE_P(
    AllCores, Determinism,
    ::testing::Values(sim::EventCoreKind::kPooledWheel,
                      sim::EventCoreKind::kLegacyHeap),
    [](const ::testing::TestParamInfo<sim::EventCoreKind>& info) {
      return std::string(sim::event_core_name(info.param));
    });

TEST_P(Determinism, SameSeedReproducesErrorFreeRuns) {
  for (ProtocolKind kind : kAllKinds) {
    Capture a = capture_run(kind, GetParam(), /*seed=*/3, /*fer=*/0.0);
    Capture b = capture_run(kind, GetParam(), /*seed=*/3, /*fer=*/0.0);
    expect_identical(a, b, protocol_name(kind));
    EXPECT_FALSE(a.trace.empty()) << protocol_name(kind);
  }
}

TEST_P(Determinism, SameSeedReproducesLossyRuns) {
  for (ProtocolKind kind : kAllKinds) {
    Capture a = capture_run(kind, GetParam(), /*seed=*/11, /*fer=*/0.002);
    Capture b = capture_run(kind, GetParam(), /*seed=*/11, /*fer=*/0.002);
    expect_identical(a, b, protocol_name(kind));
  }
}

TEST_P(Determinism, DifferentSeedsDiverge) {
  // Sanity check that the comparison has teeth: with loss enabled, two
  // different seeds must NOT produce the same trace timestamps.
  Capture a = capture_run(ProtocolKind::kAck, GetParam(), /*seed=*/1, /*fer=*/0.01);
  Capture b = capture_run(ProtocolKind::kAck, GetParam(), /*seed=*/2, /*fer=*/0.01);
  ASSERT_TRUE(a.result.completed && b.result.completed);
  EXPECT_FALSE(a.trace == b.trace);
}

// The multi-tenant tier rides the same contract: a TenantMix — two
// tenants multiplexed over one shared switch, with churn — is a pure
// function of its seed, on either event core.
struct MixCapture {
  harness::TenantMixResult result;
  std::string report_json;
  std::string metrics_json;  // the folded (sweep-style) registry
  trace::Tracer tracer;      // the shared fabric's tenant-tagged trace
};

MixCapture capture_mix(sim::EventCoreKind core, std::uint64_t seed) {
  const sim::EventCoreKind previous = sim::default_event_core();
  sim::set_default_event_core(core);

  MixCapture cap;
  metrics::Registry registry;
  harness::TenantMixSpec spec;
  spec.n_tenants = 2;
  spec.receivers_per_tenant = 3;
  spec.message_bytes = 60'000;
  spec.kinds = {ProtocolKind::kAck, ProtocolKind::kRing};
  spec.placement = harness::TenantPlacementPolicy::kColliding;
  spec.n_hosts = 8;  // both tenants behind the one default switch
  spec.churn.late_join_fraction = 0.3;
  spec.churn.leave_fraction = 0.3;
  spec.seed = seed;
  spec.metrics = &registry;
  spec.tracer = &cap.tracer;
  cap.result = harness::run_tenant_mix(spec);
  cap.report_json = cap.result.to_json();
  cap.metrics_json = registry.to_json();

  sim::set_default_event_core(previous);
  return cap;
}

void expect_mix_identical(const MixCapture& x, const MixCapture& y) {
  ASSERT_TRUE(x.result.completed) << x.result.error;
  ASSERT_TRUE(y.result.completed) << y.result.error;
  EXPECT_EQ(x.result.events_executed, y.result.events_executed);
  EXPECT_EQ(x.report_json, y.report_json);
  EXPECT_EQ(x.metrics_json, y.metrics_json);
  ASSERT_EQ(x.result.tenants.size(), y.result.tenants.size());
  for (std::size_t t = 0; t < x.result.tenants.size(); ++t) {
    EXPECT_EQ(x.result.tenants[t].metrics_json, y.result.tenants[t].metrics_json) << t;
  }
  ASSERT_EQ(x.tracer.events().size(), y.tracer.events().size());
  EXPECT_TRUE(x.tracer.same_as(y.tracer));
}

TEST_P(Determinism, SameSeedReproducesTwoTenantSharedSwitchMix) {
  MixCapture a = capture_mix(GetParam(), /*seed=*/17);
  MixCapture b = capture_mix(GetParam(), /*seed=*/17);
  expect_mix_identical(a, b);
  EXPECT_FALSE(a.tracer.events().empty());
}

TEST(DeterminismCrossCore, CoresAgreeOnTenantMix) {
  MixCapture pooled = capture_mix(sim::EventCoreKind::kPooledWheel, /*seed=*/19);
  MixCapture legacy = capture_mix(sim::EventCoreKind::kLegacyHeap, /*seed=*/19);
  expect_mix_identical(pooled, legacy);
}

TEST(DeterminismCrossCore, CoresAgreeErrorFree) {
  for (ProtocolKind kind : kAllKinds) {
    Capture pooled =
        capture_run(kind, sim::EventCoreKind::kPooledWheel, /*seed=*/5, /*fer=*/0.0);
    Capture legacy =
        capture_run(kind, sim::EventCoreKind::kLegacyHeap, /*seed=*/5, /*fer=*/0.0);
    expect_identical(pooled, legacy, protocol_name(kind));
  }
}

TEST(DeterminismCrossCore, CoresAgreeUnderLoss) {
  for (ProtocolKind kind : kAllKinds) {
    Capture pooled = capture_run(kind, sim::EventCoreKind::kPooledWheel,
                                 /*seed=*/13, /*fer=*/0.002);
    Capture legacy = capture_run(kind, sim::EventCoreKind::kLegacyHeap,
                                 /*seed=*/13, /*fer=*/0.002);
    expect_identical(pooled, legacy, protocol_name(kind));
  }
}

TEST(DeterminismCrossCore, CoresAgreeUnderFaults) {
  // A crashed receiver plus a flapping link drives the cancel/re-arm and
  // eviction paths — the timers the pooled wheel exists to make cheap.
  sim::FaultPlan faults;
  faults.crash(2, sim::milliseconds(5))
      .flap_link(7, sim::milliseconds(2), sim::milliseconds(40),
                 sim::milliseconds(10));
  for (ProtocolKind kind : kAllKinds) {
    Capture pooled = capture_run(kind, sim::EventCoreKind::kPooledWheel,
                                 /*seed=*/21, /*fer=*/0.001, faults);
    Capture legacy = capture_run(kind, sim::EventCoreKind::kLegacyHeap,
                                 /*seed=*/21, /*fer=*/0.001, faults);
    ASSERT_EQ(pooled.result.completed, legacy.result.completed)
        << protocol_name(kind);
    if (pooled.result.completed) {
      expect_identical(pooled, legacy, protocol_name(kind));
    } else {
      // Even a timed-out run must time out identically.
      EXPECT_EQ(pooled.metrics_json, legacy.metrics_json) << protocol_name(kind);
      EXPECT_TRUE(pooled.trace == legacy.trace) << protocol_name(kind);
      EXPECT_TRUE(pooled.tracer.same_as(legacy.tracer)) << protocol_name(kind);
    }
  }
}

}  // namespace
}  // namespace rmc::rmcast
