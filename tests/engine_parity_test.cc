// Engine-parity regression test.
//
// The engine layer extracted the per-protocol policies out of the
// sender/receiver monoliths; this suite pins the refactor to goldens
// captured from the pre-refactor build on the tab02_control_load
// scenario (500KB to 30 receivers, the paper's Table 2 configurations).
// The simulation is deterministic for a fixed seed, so every control
// message count, delivered byte and the elapsed clock itself must come
// out identical — any drift means an engine changed protocol behavior,
// not just code structure.
//
// The suite is parameterized over both event cores (the pooled timer
// wheel and the legacy heap), so the goldens simultaneously pin the
// engine refactor AND prove the event-core swap changed nothing
// observable.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "sim/simulator.h"

namespace rmc::rmcast {
namespace {

struct Golden {
  const char* label;
  ProtocolKind kind;
  std::uint64_t data_packets_sent;
  std::uint64_t retransmissions;
  std::uint64_t acks_received;
  std::uint64_t naks_received;
  std::uint64_t alloc_requests_sent;
  std::uint64_t alloc_responses_received;
  std::uint64_t total_acks_sent;
  std::uint64_t total_naks_sent;
  std::uint64_t delivered_bytes;
  double seconds;
};

// The tab02_control_load configurations: Table 2's per-protocol tunings,
// plus the hybrid-FEC kinds at their recommended group shapes.
ProtocolConfig tab02_config(ProtocolKind kind) {
  ProtocolConfig c;
  c.kind = kind;
  c.packet_size = 8000;
  c.window_size = kind == ProtocolKind::kRing ? 40 : 20;
  if (kind == ProtocolKind::kNakPolling) c.poll_interval = 12;
  if (kind == ProtocolKind::kFlatTree) c.tree_height = 6;
  if (is_fec_protocol(kind)) {
    c.fec.k = kind == ProtocolKind::kEcXor ? 16 : 32;
    c.fec.m = kind == ProtocolKind::kEcXor ? 1 : 8;
    c.window_size = c.fec.group_size() + 4;
    c.selective_repeat = true;
    c.receiver_driven_timeouts = true;
  }
  return c;
}

void expect_matches_golden(const Golden& g, std::uint64_t seed,
                           double frame_error_rate) {
  harness::MulticastRunSpec spec;
  spec.n_receivers = 30;
  spec.message_bytes = 500'000;
  spec.protocol = tab02_config(g.kind);
  spec.seed = seed;
  spec.cluster.link.frame_error_rate = frame_error_rate;
  harness::RunResult r = harness::run_multicast(spec);
  ASSERT_TRUE(r.completed) << g.label << ": " << r.error;

  EXPECT_EQ(r.sender.data_packets_sent, g.data_packets_sent) << g.label;
  EXPECT_EQ(r.sender.retransmissions, g.retransmissions) << g.label;
  EXPECT_EQ(r.sender.acks_received, g.acks_received) << g.label;
  EXPECT_EQ(r.sender.naks_received, g.naks_received) << g.label;
  EXPECT_EQ(r.sender.alloc_requests_sent, g.alloc_requests_sent) << g.label;
  EXPECT_EQ(r.sender.alloc_responses_received, g.alloc_responses_received) << g.label;
  EXPECT_EQ(r.total_acks_sent(), g.total_acks_sent) << g.label;
  EXPECT_EQ(r.total_naks_sent(), g.total_naks_sent) << g.label;
  std::uint64_t delivered_bytes = 0;
  for (const auto& rs : r.receivers) {
    delivered_bytes += rs.messages_delivered * spec.message_bytes;
  }
  EXPECT_EQ(delivered_bytes, g.delivered_bytes) << g.label;
  EXPECT_NEAR(r.seconds, g.seconds, 1e-9) << g.label;
}

// Captured from the pre-refactor build (commit 3d6f54d), seed=1, no loss.
const std::vector<Golden> kErrorFreeGoldens = {
    {"kAck", ProtocolKind::kAck, 63u, 0u, 1890u, 0u, 1u, 30u, 1890u, 0u, 15000000u,
     0.140451392},
    {"kNakPolling", ProtocolKind::kNakPolling, 63u, 0u, 180u, 0u, 1u, 30u, 180u, 0u,
     15000000u, 0.048207808},
    {"kRing", ProtocolKind::kRing, 63u, 0u, 92u, 0u, 1u, 30u, 92u, 0u, 15000000u,
     0.046164352},
    {"kFlatTree", ProtocolKind::kFlatTree, 63u, 0u, 315u, 0u, 1u, 5u, 1890u, 0u,
     15000000u, 0.055469776},
    {"kBinaryTree", ProtocolKind::kBinaryTree, 63u, 0u, 63u, 0u, 1u, 1u, 1890u, 0u,
     15000000u, 0.045608824},
};

// Captured from the pre-refactor build, seed=7, frame_error_rate=0.001 —
// exercises the NAK, retransmission, suppression and polling paths the
// error-free run never reaches.
const std::vector<Golden> kLossyGoldens = {
    {"kAck", ProtocolKind::kAck, 63u, 74u, 3727u, 200u, 1u, 30u, 3745u, 201u, 15000000u,
     0.362703504},
    {"kNakPolling", ProtocolKind::kNakPolling, 63u, 67u, 335u, 62u, 1u, 30u, 337u, 62u,
     15000000u, 0.292309776},
    {"kRing", ProtocolKind::kRing, 63u, 136u, 3589u, 238u, 1u, 30u, 3598u, 238u,
     15000000u, 0.265690000},
    {"kFlatTree", ProtocolKind::kFlatTree, 63u, 175u, 1075u, 319u, 1u, 5u, 6556u, 320u,
     15000000u, 0.267267088},
    {"kBinaryTree", ProtocolKind::kBinaryTree, 63u, 423u, 5956u, 324u, 1u, 1u, 31877u,
     324u, 15000000u, 0.624281624},
};

// The hybrid-FEC kinds have no pre-refactor build to compare against;
// their goldens were captured from the first EC-capable build (this
// commit) and pin the parity/decode/GROUP_NAK machinery for every
// refactor after it. Same scenario: 500KB to 30 receivers.
struct EcGolden {
  const char* label;
  ProtocolKind kind;
  std::uint64_t data_packets_sent;
  std::uint64_t retransmissions;
  std::uint64_t acks_received;
  std::uint64_t total_acks_sent;
  std::uint64_t parity_packets_sent;
  std::uint64_t parity_packets_received;
  std::uint64_t fec_decodes;
  std::uint64_t fec_blocks_recovered;
  std::uint64_t group_naks_sent;
  std::uint64_t group_naks_received;
  std::uint64_t delivered_bytes;
  double seconds;
};

void expect_matches_ec_golden(const EcGolden& g, std::uint64_t seed,
                              double frame_error_rate) {
  harness::MulticastRunSpec spec;
  spec.n_receivers = 30;
  spec.message_bytes = 500'000;
  spec.protocol = tab02_config(g.kind);
  spec.seed = seed;
  spec.cluster.link.frame_error_rate = frame_error_rate;
  harness::RunResult r = harness::run_multicast(spec);
  ASSERT_TRUE(r.completed) << g.label << ": " << r.error;

  EXPECT_EQ(r.sender.data_packets_sent, g.data_packets_sent) << g.label;
  EXPECT_EQ(r.sender.retransmissions, g.retransmissions) << g.label;
  EXPECT_EQ(r.sender.acks_received, g.acks_received) << g.label;
  EXPECT_EQ(r.total_acks_sent(), g.total_acks_sent) << g.label;
  EXPECT_EQ(r.sender.parity_packets_sent, g.parity_packets_sent) << g.label;
  EXPECT_EQ(r.sender.group_naks_received, g.group_naks_received) << g.label;
  std::uint64_t parity_rx = 0, decodes = 0, recovered = 0, gnaks = 0,
                delivered_bytes = 0;
  for (const auto& rs : r.receivers) {
    parity_rx += rs.parity_packets_received;
    decodes += rs.fec_decodes;
    recovered += rs.fec_blocks_recovered;
    gnaks += rs.group_naks_sent;
    delivered_bytes += rs.messages_delivered * spec.message_bytes;
  }
  EXPECT_EQ(parity_rx, g.parity_packets_received) << g.label;
  EXPECT_EQ(decodes, g.fec_decodes) << g.label;
  EXPECT_EQ(recovered, g.fec_blocks_recovered) << g.label;
  EXPECT_EQ(gnaks, g.group_naks_sent) << g.label;
  EXPECT_EQ(delivered_bytes, g.delivered_bytes) << g.label;
  EXPECT_NEAR(r.seconds, g.seconds, 1e-9) << g.label;
}

// Error-free, seed=1: parity flows (4 = 4 groups x m=1; 16 = 2 x m=8)
// but nothing decodes and no GROUP_NAK fires.
const std::vector<EcGolden> kEcErrorFreeGoldens = {
    {"kEcXor", ProtocolKind::kEcXor, 63u, 0u, 120u, 120u, 4u, 120u, 0u, 0u, 0u,
     0u, 15000000u, 0.048172672},
    {"kEcRs", ProtocolKind::kEcRs, 63u, 0u, 60u, 60u, 16u, 240u, 0u, 0u, 0u, 0u,
     15000000u, 0.056367248},
};

// seed=7, frame_error_rate=0.001: most losses decode locally; one window
// stall mid-transfer exercises every receiver's inactivity-forced
// GROUP_NAK exactly once, and the sender's suppression collapses the 30
// requests into single-digit retransmissions.
const std::vector<EcGolden> kEcLossyGoldens = {
    {"kEcXor", ProtocolKind::kEcXor, 63u, 2u, 176u, 177u, 4u, 119u, 10u, 10u,
     30u, 30u, 15000000u, 0.084992304},
    {"kEcRs", ProtocolKind::kEcRs, 63u, 1u, 88u, 89u, 16u, 283u, 9u, 9u, 30u,
     30u, 15000000u, 0.096622224},
};

class EngineParity : public ::testing::TestWithParam<sim::EventCoreKind> {
 protected:
  void SetUp() override {
    previous_ = sim::default_event_core();
    sim::set_default_event_core(GetParam());
  }
  void TearDown() override { sim::set_default_event_core(previous_); }

 private:
  sim::EventCoreKind previous_ = sim::EventCoreKind::kPooledWheel;
};

INSTANTIATE_TEST_SUITE_P(
    BothCores, EngineParity,
    ::testing::Values(sim::EventCoreKind::kPooledWheel,
                      sim::EventCoreKind::kLegacyHeap),
    [](const ::testing::TestParamInfo<sim::EventCoreKind>& info) {
      return std::string(sim::event_core_name(info.param));
    });

TEST_P(EngineParity, ErrorFreeControlLoadMatchesPreRefactorGoldens) {
  for (const Golden& g : kErrorFreeGoldens) {
    expect_matches_golden(g, /*seed=*/1, /*frame_error_rate=*/0.0);
  }
}

TEST_P(EngineParity, LossyControlLoadMatchesPreRefactorGoldens) {
  for (const Golden& g : kLossyGoldens) {
    expect_matches_golden(g, /*seed=*/7, /*frame_error_rate=*/0.001);
  }
}

TEST_P(EngineParity, ErrorFreeEcControlLoadMatchesCapturedGoldens) {
  for (const EcGolden& g : kEcErrorFreeGoldens) {
    expect_matches_ec_golden(g, /*seed=*/1, /*frame_error_rate=*/0.0);
  }
}

TEST_P(EngineParity, LossyEcControlLoadMatchesCapturedGoldens) {
  for (const EcGolden& g : kEcLossyGoldens) {
    expect_matches_ec_golden(g, /*seed=*/7, /*frame_error_rate=*/0.001);
  }
}

}  // namespace
}  // namespace rmc::rmcast
