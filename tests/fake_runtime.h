// Test doubles for the runtime interfaces: a manually advanced clock with
// recorded timers and a socket that captures outgoing packets and lets
// tests inject arbitrary incoming ones. These enable protocol unit tests
// that a full simulated network cannot express cleanly — duplicate floods,
// stale sessions, reordered chain traffic, malformed bytes — with exact
// assertions on what the endpoint emits in response.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/panic.h"
#include "rmcast/group.h"
#include "rmcast/wire.h"
#include "runtime/runtime.h"

namespace rmc::test {

class FakeRuntime final : public rt::Runtime {
 public:
  sim::Time now() override { return now_; }

  rt::TimerId schedule_after(sim::Time delay, std::function<void()> fn) override {
    rt::TimerId id = next_id_++;
    timers_.emplace(id, Timer{now_ + delay, std::move(fn)});
    return id;
  }

  void cancel(rt::TimerId id) override { timers_.erase(id); }

  // Costs are irrelevant to unit tests; run immediately.
  void run_cost(sim::Time /*cost*/, std::function<void()> fn) override { fn(); }

  // Advances the clock, firing due timers in deadline order.
  void advance(sim::Time delta) {
    const sim::Time target = now_ + delta;
    for (;;) {
      auto due = timers_.end();
      for (auto it = timers_.begin(); it != timers_.end(); ++it) {
        if (it->second.deadline <= target &&
            (due == timers_.end() || it->second.deadline < due->second.deadline)) {
          due = it;
        }
      }
      if (due == timers_.end()) break;
      now_ = due->second.deadline;
      auto fn = std::move(due->second.fn);
      timers_.erase(due);
      fn();
    }
    now_ = target;
  }

  std::size_t pending_timers() const { return timers_.size(); }

 private:
  struct Timer {
    sim::Time deadline;
    std::function<void()> fn;
  };
  sim::Time now_ = 0;
  rt::TimerId next_id_ = 1;
  std::map<rt::TimerId, Timer> timers_;
};

class FakeSocket final : public rt::UdpSocket {
 public:
  explicit FakeSocket(net::Endpoint local) : local_(local) {}

  void send_to(const net::Endpoint& dst, BytesView payload) override {
    sent_.push_back({dst, Buffer(payload.begin(), payload.end())});
  }

  void set_handler(Handler handler) override { handler_ = std::move(handler); }
  net::Endpoint local_endpoint() const override { return local_; }

  // Test-side injection of an incoming datagram.
  void inject(const net::Endpoint& src, BytesView payload) {
    RMC_ENSURE(handler_ != nullptr, "no handler installed");
    handler_(src, payload);
  }
  void inject(const net::Endpoint& src, const Buffer& payload) {
    inject(src, BytesView(payload.data(), payload.size()));
  }

  struct Sent {
    net::Endpoint dst;
    Buffer payload;
  };
  const std::vector<Sent>& sent() const { return sent_; }
  void clear_sent() { sent_.clear(); }

  // Parses packet i as a protocol header (and asserts it parses).
  rmcast::Header header_of(std::size_t i) const {
    RMC_ENSURE(i < sent_.size(), "no such sent packet");
    Reader r(BytesView(sent_[i].payload.data(), sent_[i].payload.size()));
    auto h = rmcast::read_header(r);
    RMC_ENSURE(h.has_value(), "sent packet does not parse");
    return *h;
  }

  // Headers of everything sent, for terse assertions.
  std::vector<rmcast::Header> sent_headers() const {
    std::vector<rmcast::Header> out;
    for (std::size_t i = 0; i < sent_.size(); ++i) out.push_back(header_of(i));
    return out;
  }

 private:
  net::Endpoint local_;
  Handler handler_;
  std::vector<Sent> sent_;
};

// Canonical membership for unit tests: group 239.0.0.1:5000, sender at
// 10.0.0.1:5001, receivers at 10.0.0.(i+2):5002.
inline rmcast::GroupMembership fake_membership(std::size_t n_receivers) {
  rmcast::GroupMembership m;
  m.group = {net::Ipv4Addr(239, 0, 0, 1), 5000};
  m.sender_control = {net::Ipv4Addr(10, 0, 0, 1), 5001};
  for (std::size_t i = 0; i < n_receivers; ++i) {
    m.receiver_control.push_back(
        {net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(i + 2)), 5002});
  }
  return m;
}

}  // namespace rmc::test
