// Unit tests for the GF(2^8) kernel and the systematic erasure codec:
// field identities, scalar/wide backend equivalence, and decode round
// trips over every erasure pattern the MDS bound admits.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "rmcast/fec/codec.h"
#include "rmcast/fec/gf256.h"

namespace rmc::rmcast::fec {
namespace {

TEST(Gf256, MultiplicationIsAFieldOperation) {
  // Zero annihilates, one is the identity.
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(gf_mul(static_cast<std::uint8_t>(a), 0), 0);
    EXPECT_EQ(gf_mul(0, static_cast<std::uint8_t>(a)), 0);
    EXPECT_EQ(gf_mul(static_cast<std::uint8_t>(a), 1), a);
  }
  // Commutative, and associative on a sampled triple grid.
  for (unsigned a = 1; a < 256; a += 7) {
    for (unsigned b = 1; b < 256; b += 11) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(gf_mul(ua, ub), gf_mul(ub, ua));
      for (unsigned c = 1; c < 256; c += 29) {
        const auto uc = static_cast<std::uint8_t>(c);
        EXPECT_EQ(gf_mul(gf_mul(ua, ub), uc), gf_mul(ua, gf_mul(ub, uc)));
      }
    }
  }
}

TEST(Gf256, EveryNonzeroElementHasAnInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(ua, gf_inv(ua)), 1) << "a=" << a;
    EXPECT_EQ(gf_div(ua, ua), 1) << "a=" << a;
    // div is mul by the inverse.
    EXPECT_EQ(gf_div(0x5A, ua), gf_mul(0x5A, gf_inv(ua))) << "a=" << a;
  }
}

TEST(Gf256, ExpAndLogAreInverseBijections) {
  // 2 generates the multiplicative group: 255 distinct powers.
  std::array<bool, 256> seen{};
  for (unsigned i = 0; i < 255; ++i) {
    const std::uint8_t v = gf_exp(i);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "power " << i << " repeats";
    seen[v] = true;
    EXPECT_EQ(gf_log(v), i);
  }
  // The doubled exp table: indices past 254 wrap mod 255 so the mul
  // kernel can skip a reduction.
  EXPECT_EQ(gf_exp(255), gf_exp(0));
  EXPECT_EQ(gf_exp(300), gf_exp(300 - 255));
}

TEST(Gf256, MulMatchesShiftAndReduceReference) {
  // Carryless multiply reduced by 0x11D, bit by bit — the definitional
  // product the table path must reproduce for every pair.
  auto reference = [](std::uint8_t a, std::uint8_t b) {
    std::uint32_t acc = 0;
    std::uint32_t aa = a;
    for (unsigned bit = 0; bit < 8; ++bit) {
      if ((b >> bit) & 1u) acc ^= aa << bit;
    }
    for (int bit = 15; bit >= 8; --bit) {
      if ((acc >> bit) & 1u) acc ^= kGfPoly << (bit - 8);
    }
    return static_cast<std::uint8_t>(acc);
  };
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      ASSERT_EQ(gf_mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                reference(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)))
          << a << "*" << b;
    }
  }
}

// The wide slice-by-64 path must be byte-identical to scalar for every
// constant, including awkward lengths that exercise the scalar tail.
TEST(Gf256, WideRegionOpsMatchScalar) {
  Rng rng(0xFEC);
  for (std::size_t len : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                          std::size_t{65}, std::size_t{1000}, std::size_t{4096}}) {
    std::vector<std::uint8_t> src(len), dst_scalar(len), dst_wide(len);
    for (std::size_t i = 0; i < len; ++i) {
      src[i] = static_cast<std::uint8_t>(rng.uniform(256));
      dst_scalar[i] = static_cast<std::uint8_t>(rng.uniform(256));
    }
    dst_wide = dst_scalar;
    xor_region(dst_scalar.data(), src.data(), len, Backend::kScalar);
    xor_region(dst_wide.data(), src.data(), len, Backend::kWide);
    ASSERT_EQ(dst_scalar, dst_wide) << "xor len=" << len;
    for (unsigned c = 0; c < 256; ++c) {
      mul_add_region(dst_scalar.data(), src.data(), static_cast<std::uint8_t>(c),
                     len, Backend::kScalar);
      mul_add_region(dst_wide.data(), src.data(), static_cast<std::uint8_t>(c),
                     len, Backend::kWide);
      ASSERT_EQ(dst_scalar, dst_wide) << "mul_add c=" << c << " len=" << len;
    }
  }
}

// --- Codec -------------------------------------------------------------------

std::vector<std::vector<std::uint8_t>> random_blocks(Rng& rng, std::size_t k,
                                                     std::size_t len) {
  std::vector<std::vector<std::uint8_t>> blocks(k, std::vector<std::uint8_t>(len));
  for (auto& b : blocks) {
    for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.uniform(256));
  }
  return blocks;
}

// Encodes `original`, erases the data blocks and withholds the parity
// blocks that `erased`/`parity_lost` bitmaps name, decodes, and checks
// every data block round-trips. Returns decode's verdict.
bool erasure_round_trip(const Codec& codec,
                        const std::vector<std::vector<std::uint8_t>>& original,
                        std::uint64_t erased, std::uint64_t parity_lost,
                        std::size_t len, Backend backend) {
  const std::size_t k = codec.k();
  const std::size_t m = codec.m();
  std::vector<std::vector<std::uint8_t>> parity(m, std::vector<std::uint8_t>(len));
  std::vector<std::uint8_t*> parity_ptrs(m);
  for (std::size_t j = 0; j < m; ++j) parity_ptrs[j] = parity[j].data();
  std::vector<const std::uint8_t*> data_in(k);
  for (std::size_t i = 0; i < k; ++i) data_in[i] = original[i].data();
  codec.encode(data_in.data(), parity_ptrs.data(), len, backend);

  std::vector<std::vector<std::uint8_t>> work = original;
  std::vector<std::uint8_t*> data_ptrs(k);
  bool data_present[kMaxK];
  bool parity_present[kMaxM];
  for (std::size_t i = 0; i < k; ++i) {
    data_ptrs[i] = work[i].data();
    data_present[i] = ((erased >> i) & 1u) == 0;
    if (!data_present[i]) std::fill(work[i].begin(), work[i].end(), 0xAB);
  }
  std::vector<const std::uint8_t*> parity_in(m);
  for (std::size_t j = 0; j < m; ++j) {
    parity_present[j] = ((parity_lost >> j) & 1u) == 0;
    parity_in[j] = parity_present[j] ? parity[j].data() : nullptr;
  }
  const bool ok = codec.decode(data_ptrs.data(), data_present, parity_in.data(),
                               parity_present, len, backend);
  if (!ok) return false;
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(work[i], original[i]) << "block " << i << " erased=" << erased;
  }
  return true;
}

TEST(Codec, XorParityRepairsAnySingleErasure) {
  Rng rng(7);
  const Codec codec(8, 1);
  const auto original = random_blocks(rng, 8, 200);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(erasure_round_trip(codec, original, 1ull << i, 0, 200,
                                   Backend::kScalar));
  }
  // Two erasures exceed one parity: decode must refuse, not corrupt.
  EXPECT_FALSE(erasure_round_trip(codec, original, 0b11, 0, 200, Backend::kScalar));
  // Parity lost too: nothing to repair with.
  EXPECT_FALSE(erasure_round_trip(codec, original, 0b1, 0b1, 200, Backend::kScalar));
}

TEST(Codec, XorCoefficientsAreAllOnes) {
  const Codec codec(16, 1);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(codec.coefficient(0, i), 1);
}

// Exhaustive MDS check at k=5, m=3: every erasure pattern with at most m
// lost data blocks decodes from every sufficient parity subset.
TEST(Codec, EveryErasurePatternUpToMDecodes) {
  Rng rng(41);
  const std::size_t k = 5, m = 3;
  const Codec codec(k, m);
  const auto original = random_blocks(rng, k, 96);
  for (std::uint64_t erased = 0; erased < (1u << k); ++erased) {
    const auto n_erased =
        static_cast<std::size_t>(__builtin_popcountll(erased));
    for (std::uint64_t plost = 0; plost < (1u << m); ++plost) {
      const std::size_t held =
          m - static_cast<std::size_t>(__builtin_popcountll(plost));
      const bool expect_ok = n_erased <= held;
      EXPECT_EQ(erasure_round_trip(codec, original, erased, plost, 96,
                                   Backend::kScalar),
                expect_ok)
          << "erased=" << erased << " plost=" << plost;
    }
  }
}

// The protocol-default shape: k=32, m=8, wide backend, sampled patterns
// including a full 8-long burst (the pattern XOR interleaving cannot fix
// but RS must).
TEST(Codec, DefaultRsShapeSurvivesBurstsWideBackend) {
  Rng rng(97);
  const std::size_t k = 32, m = 8;
  const Codec codec(k, m);
  const auto original = random_blocks(rng, k, 1500);
  // An aligned burst of 8, a straddling burst, scattered losses, and the
  // identity (nothing lost).
  const std::uint64_t patterns[] = {0xFFull << 8, 0xFFull << 21,
                                    0x8421'0842'1084ull & ((1ull << 32) - 1), 0};
  for (std::uint64_t erased : patterns) {
    if (__builtin_popcountll(erased) > static_cast<int>(m)) continue;
    EXPECT_TRUE(
        erasure_round_trip(codec, original, erased, 0, 1500, Backend::kWide))
        << "erased=" << std::hex << erased;
  }
  for (int trial = 0; trial < 50; ++trial) {
    std::uint64_t erased = 0;
    const std::size_t n = 1 + rng.uniform(m);
    while (static_cast<std::size_t>(__builtin_popcountll(erased)) < n) {
      erased |= 1ull << rng.uniform(k);
    }
    EXPECT_TRUE(
        erasure_round_trip(codec, original, erased, 0, 1500, Backend::kWide))
        << "trial " << trial << " erased=" << std::hex << erased;
  }
  // 9 erasures break the MDS bound.
  EXPECT_FALSE(erasure_round_trip(codec, original, (1ull << 9) - 1, 0, 1500,
                                  Backend::kWide));
}

// Incremental encode (the sender's path: fold one block at a time as it
// transmits) must equal the one-shot encode.
TEST(Codec, IncrementalEncodeAddMatchesOneShot) {
  Rng rng(13);
  const std::size_t k = 6, m = 3, len = 333;
  const Codec codec(k, m);
  const auto original = random_blocks(rng, k, len);

  std::vector<std::vector<std::uint8_t>> one_shot(m, std::vector<std::uint8_t>(len));
  std::vector<std::uint8_t*> one_ptrs(m);
  for (std::size_t j = 0; j < m; ++j) one_ptrs[j] = one_shot[j].data();
  std::vector<const std::uint8_t*> data_in(k);
  for (std::size_t i = 0; i < k; ++i) data_in[i] = original[i].data();
  codec.encode(data_in.data(), one_ptrs.data(), len, Backend::kScalar);

  std::vector<std::vector<std::uint8_t>> incr(m, std::vector<std::uint8_t>(len, 0));
  std::vector<std::uint8_t*> incr_ptrs(m);
  for (std::size_t j = 0; j < m; ++j) incr_ptrs[j] = incr[j].data();
  for (std::size_t i = 0; i < k; ++i) {
    codec.encode_add(i, original[i].data(), incr_ptrs.data(), len, Backend::kWide);
  }
  EXPECT_EQ(incr, one_shot);
}

// Rizzo's normalized-Vandermonde construction promises every square
// submatrix of P is invertible — decode for ANY erasure pattern depends
// on it. Check all 2x2 minors at the default shape (a naive power matrix
// fails this check).
TEST(Codec, ParityMatrixMinorsAreNonsingular) {
  const std::size_t k = 32, m = 8;
  const Codec codec(k, m);
  for (std::size_t r0 = 0; r0 < m; ++r0) {
    for (std::size_t r1 = r0 + 1; r1 < m; ++r1) {
      for (std::size_t c0 = 0; c0 < k; ++c0) {
        for (std::size_t c1 = c0 + 1; c1 < k; ++c1) {
          const std::uint8_t det =
              gf_mul(codec.coefficient(r0, c0), codec.coefficient(r1, c1)) ^
              gf_mul(codec.coefficient(r0, c1), codec.coefficient(r1, c0));
          ASSERT_NE(det, 0) << "singular 2x2 minor at rows " << r0 << "," << r1
                            << " cols " << c0 << "," << c1;
        }
      }
    }
  }
}

}  // namespace
}  // namespace rmc::rmcast::fec
