// Tests for the experiment harness: testbed wiring, runners, trial
// averaging, and table output.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <utility>

#include "harness/experiment.h"
#include "harness/table.h"
#include "harness/testbed.h"
#include "harness/trace.h"
#include "rmcast/receiver.h"
#include "rmcast/sender.h"

namespace rmc::harness {
namespace {

TEST(Testbed, WiresSocketsAndMembership) {
  Testbed bed(4);
  EXPECT_EQ(bed.n_receivers(), 4u);
  EXPECT_EQ(bed.cluster().size(), 5u);  // sender + 4
  const auto& m = bed.membership();
  EXPECT_EQ(m.validate(), "");
  EXPECT_EQ(m.n_receivers(), 4u);
  EXPECT_EQ(m.sender_control.addr, inet::Cluster::host_addr(0));
  EXPECT_EQ(m.receiver_control[3].addr, inet::Cluster::host_addr(4));
  EXPECT_EQ(bed.sender_socket().local_endpoint(), m.sender_control);
  EXPECT_EQ(bed.receiver_control_socket(2).local_endpoint(), m.receiver_control[2]);
  EXPECT_EQ(bed.total_rcvbuf_drops(), 0u);
}

TEST(RunMulticast, ReportsStatsAndTiming) {
  MulticastRunSpec spec;
  spec.n_receivers = 4;
  spec.message_bytes = 50'000;
  spec.protocol.kind = rmcast::ProtocolKind::kAck;
  spec.protocol.packet_size = 8000;
  spec.protocol.window_size = 8;
  RunResult r = run_multicast(spec);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.throughput_bps(), 0.0);
  EXPECT_EQ(r.sender.data_packets_sent, 7u);  // ceil(50000/8000)
  EXPECT_EQ(r.receivers.size(), 4u);
  EXPECT_EQ(r.total_acks_sent(), 28u);
  EXPECT_GT(r.sender_nic_busy_seconds, 0.0);
  EXPECT_GT(r.sender_cpu_busy_seconds, 0.0);
}

TEST(RunMulticast, InvalidConfigFailsFast) {
  MulticastRunSpec spec;
  spec.n_receivers = 30;
  spec.protocol.kind = rmcast::ProtocolKind::kRing;
  spec.protocol.window_size = 10;  // <= receivers: rejected
  RunResult r = run_multicast(spec);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("ring"), std::string::npos);
}

TEST(RunMulticast, TimeLimitProducesTimeoutError) {
  MulticastRunSpec spec;
  spec.n_receivers = 4;
  spec.message_bytes = 1'000'000;
  spec.protocol.kind = rmcast::ProtocolKind::kAck;
  spec.time_limit = sim::microseconds(100);  // absurdly tight
  RunResult r = run_multicast(spec);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("timed out"), std::string::npos);
}

TEST(RunMulticast, DeterministicForSeed) {
  MulticastRunSpec spec;
  spec.n_receivers = 6;
  spec.message_bytes = 100'000;
  spec.protocol.kind = rmcast::ProtocolKind::kNakPolling;
  spec.protocol.window_size = 16;
  spec.protocol.poll_interval = 12;
  spec.seed = 42;
  RunResult a = run_multicast(spec);
  RunResult b = run_multicast(spec);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.sender.data_packets_sent, b.sender.data_packets_sent);
}

TEST(MeanSeconds, AveragesTrials) {
  int calls = 0;
  double mean = mean_seconds(
      [&](std::uint64_t seed) {
        ++calls;
        RunResult r;
        r.completed = true;
        r.seconds = static_cast<double>(seed);
        return r;
      },
      3, 10);
  EXPECT_EQ(calls, 3);
  EXPECT_DOUBLE_EQ(mean, 11.0);  // seeds 10, 11, 12
}

TEST(MeanSeconds, FailurePropagatesAsNegative) {
  double mean = mean_seconds(
      [&](std::uint64_t) {
        RunResult r;
        r.completed = false;
        return r;
      },
      3, 1);
  EXPECT_LT(mean, 0.0);
}

std::string capture(const Table& table, bool csv) {
  char* data = nullptr;
  std::size_t size = 0;
  FILE* mem = open_memstream(&data, &size);
  if (csv) {
    table.print_csv(mem);
  } else {
    table.print(mem);
  }
  std::fclose(mem);
  std::string out(data, size);
  free(data);
  return out;
}

TEST(TablePrinter, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  std::string out = capture(t, false);
  EXPECT_NE(out.find("name         value"), std::string::npos);
  EXPECT_NE(out.find("longer-name  2"), std::string::npos);
  EXPECT_EQ(t.n_rows(), 2u);
}

TEST(TablePrinter, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line"});
  std::string out = capture(t, true);
  EXPECT_NE(out.find("a,b\n"), std::string::npos);
  EXPECT_NE(out.find("plain,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\",line\n"), std::string::npos);
}

TEST(TablePrinterDeath, RowWidthMustMatch) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Trace, RecordsOrderedProtocolEvents) {
  Testbed bed(3);
  rmcast::ProtocolConfig config;
  config.kind = rmcast::ProtocolKind::kAck;
  config.packet_size = 8000;
  config.window_size = 8;
  rmcast::MulticastSender sender(bed.sender_runtime(), bed.sender_socket(),
                                 bed.membership(), config);
  std::vector<std::unique_ptr<rmcast::MulticastReceiver>> receivers;
  for (std::size_t i = 0; i < 3; ++i) {
    receivers.push_back(std::make_unique<rmcast::MulticastReceiver>(
        bed.receiver_runtime(i), bed.receiver_data_socket(i),
        bed.receiver_control_socket(i), bed.membership(), i, config));
  }
  TraceRecorder trace(bed.sender_runtime());
  sender.set_observer(&trace);
  for (std::size_t i = 0; i < 3; ++i) {
    receivers[i]->set_observer(trace.receiver_tap(i));
  }

  Buffer message(20'000, 0x33);  // 3 packets
  bool done = false;
  sender.send(BytesView(message.data(), message.size()),
              [&](const rmcast::SendOutcome&) { done = true; });
  while (!done && bed.simulator().step()) {
  }
  ASSERT_TRUE(done);

  using Kind = TraceRecorder::Kind;
  EXPECT_EQ(trace.count(Kind::kAllocRequest), 1u);
  EXPECT_EQ(trace.count(Kind::kTransmit), 3u);
  EXPECT_EQ(trace.count(Kind::kRetransmit), 0u);
  EXPECT_EQ(trace.count(Kind::kAck), 9u);  // 3 receivers x 3 packets
  EXPECT_EQ(trace.count(Kind::kComplete), 1u);
  // Receiver taps land in the same stream: each of the 3 receivers accepts
  // every data packet (no loss), acks it, and delivers once.
  EXPECT_EQ(trace.count(Kind::kData), 9u);
  EXPECT_EQ(trace.count(Kind::kDuplicate), 0u);
  EXPECT_EQ(trace.count(Kind::kAckSent), 9u);
  EXPECT_EQ(trace.count(Kind::kDeliver), 3u);
  for (std::uint32_t node = 0; node < 3; ++node) {
    EXPECT_EQ(trace.count_node(node), 7u);  // 3 data + 3 acks + 1 deliver
  }
  EXPECT_EQ(trace.count_node(TraceRecorder::kSenderNode),
            trace.events().size() - 3 * 7u);

  // Chronology: alloc first, completion last, timestamps non-decreasing.
  const auto& events = trace.events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, Kind::kAllocRequest);
  EXPECT_EQ(events.back().kind, Kind::kComplete);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].seconds, events[i - 1].seconds);
  }

  // CSV export round-trips through a memstream.
  char* data = nullptr;
  std::size_t size = 0;
  FILE* mem = open_memstream(&data, &size);
  trace.write_csv(mem);
  std::fclose(mem);
  std::string csv(data, size);
  free(data);
  EXPECT_NE(csv.find("seconds,kind,node,session,a,b"), std::string::npos);
  EXPECT_NE(csv.find("alloc_request"), std::string::npos);
  EXPECT_NE(csv.find("complete"), std::string::npos);
  EXPECT_NE(csv.find("deliver"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            events.size() + 1);
}

TEST(Trace, RetransmissionsVisibleUnderLoss) {
  inet::ClusterParams params;
  params.link.frame_error_rate = 0.03;
  params.seed = 5;
  Testbed bed(3, params);
  rmcast::ProtocolConfig config;
  config.kind = rmcast::ProtocolKind::kNakPolling;
  config.packet_size = 4000;
  config.window_size = 10;
  config.poll_interval = 8;
  rmcast::MulticastSender sender(bed.sender_runtime(), bed.sender_socket(),
                                 bed.membership(), config);
  std::vector<std::unique_ptr<rmcast::MulticastReceiver>> receivers;
  for (std::size_t i = 0; i < 3; ++i) {
    receivers.push_back(std::make_unique<rmcast::MulticastReceiver>(
        bed.receiver_runtime(i), bed.receiver_data_socket(i),
        bed.receiver_control_socket(i), bed.membership(), i, config));
  }
  TraceRecorder trace(bed.sender_runtime());
  sender.set_observer(&trace);

  Buffer message(200'000, 0x44);
  bool done = false;
  sender.send(BytesView(message.data(), message.size()),
              [&](const rmcast::SendOutcome&) { done = true; });
  while (!done && bed.simulator().now() < sim::seconds(60.0)) {
    if (!bed.simulator().step()) break;
  }
  ASSERT_TRUE(done);
  EXPECT_GT(trace.count(TraceRecorder::Kind::kRetransmit), 0u);
  EXPECT_EQ(trace.count(TraceRecorder::Kind::kRetransmit),
            sender.stats().retransmissions);
  EXPECT_EQ(trace.count(TraceRecorder::Kind::kNak), sender.stats().naks_received);
}

TEST(Trace, KindNameRoundTrip) {
  using Kind = TraceRecorder::Kind;
  const std::pair<Kind, const char*> expected[] = {
      {Kind::kAllocRequest, "alloc_request"},
      {Kind::kTransmit, "transmit"},
      {Kind::kRetransmit, "retransmit"},
      {Kind::kAck, "ack"},
      {Kind::kNak, "nak"},
      {Kind::kTimeout, "timeout"},
      {Kind::kComplete, "complete"},
      {Kind::kData, "data"},
      {Kind::kDuplicate, "duplicate"},
      {Kind::kAckSent, "ack_sent"},
      {Kind::kNakSent, "nak_sent"},
      {Kind::kNakSuppressed, "nak_suppressed"},
      {Kind::kRepairSent, "repair_sent"},
      {Kind::kRepairSuppressed, "repair_suppressed"},
      {Kind::kDeliver, "deliver"}};
  std::set<std::string> names;
  for (const auto& [kind, name] : expected) {
    EXPECT_STREQ(TraceRecorder::kind_name(kind), name);
    names.insert(name);
  }
  // Names are distinct, so the CSV kind column identifies the event.
  EXPECT_EQ(names.size(), sizeof(expected) / sizeof(expected[0]));
}

TEST(Trace, WriteCsvRowFormat) {
  Testbed bed(1);
  TraceRecorder trace(bed.sender_runtime());
  trace.on_transmit(7, 3, 2, false);
  trace.on_transmit(7, 3, 2, true);
  trace.on_ack(7, 1, 4);
  trace.receiver_tap(1)->on_data(7, 3, 2, false);

  using Kind = TraceRecorder::Kind;
  EXPECT_EQ(trace.count(Kind::kTransmit), 1u);
  EXPECT_EQ(trace.count(Kind::kRetransmit), 1u);
  EXPECT_EQ(trace.count(Kind::kAck), 1u);
  EXPECT_EQ(trace.count(Kind::kNak), 0u);
  EXPECT_EQ(trace.count(Kind::kData), 1u);
  EXPECT_EQ(trace.count_node(1), 1u);

  char* data = nullptr;
  std::size_t size = 0;
  FILE* mem = open_memstream(&data, &size);
  trace.write_csv(mem);
  std::fclose(mem);
  std::string csv(data, size);
  free(data);
  // Header plus one row per event, fields in declared order; the clock
  // has not advanced, so every timestamp is zero.
  EXPECT_EQ(csv,
            "seconds,kind,node,session,a,b\n"
            "0.000000000,transmit,65535,7,3,2\n"
            "0.000000000,retransmit,65535,7,3,2\n"
            "0.000000000,ack,65535,7,1,4\n"
            "0.000000000,data,1,7,3,2\n");

  trace.clear();
  EXPECT_EQ(trace.count(Kind::kTransmit), 0u);
  EXPECT_TRUE(trace.events().empty());
}

}  // namespace
}  // namespace rmc::harness
