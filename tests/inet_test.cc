// Unit tests for the simulated IP/UDP stack: fragmentation, reassembly,
// host CPU model, socket semantics, buffer overflow, and topologies.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "inet/cluster.h"
#include "inet/host.h"
#include "inet/ip.h"

namespace rmc::inet {
namespace {

Buffer pattern(std::size_t n) {
  Buffer b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 7 + 1);
  return b;
}

class FragmentationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FragmentationTest, RoundTripsThroughReassembly) {
  const std::size_t size = GetParam();
  sim::Simulator sim;
  Datagram in;
  in.src = {net::Ipv4Addr(10, 0, 0, 1), 1111};
  in.dst = {net::Ipv4Addr(10, 0, 0, 2), 2222};
  in.payload = pattern(size);

  std::vector<Datagram> out;
  std::size_t out_fragments = 0;
  Reassembler reassembler(sim, sim::milliseconds(100), [&](Datagram d, std::size_t nf) {
    out.push_back(std::move(d));
    out_fragments = nf;
  });

  auto fragments = fragment_datagram(in, 42);
  EXPECT_EQ(fragments.size(), fragment_count(size));
  for (const auto& f : fragments) {
    // Serialize and re-parse, as the wire does.
    Buffer bytes = f.serialize();
    auto parsed = IpFragment::parse(BytesView(bytes.data(), bytes.size()));
    ASSERT_TRUE(parsed.has_value());
    reassembler.accept(*parsed);
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].src, in.src);
  EXPECT_EQ(out[0].dst, in.dst);
  EXPECT_EQ(out[0].payload, in.payload);
  EXPECT_EQ(out_fragments, fragments.size());
  EXPECT_EQ(reassembler.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FragmentationTest,
                         ::testing::Values(0, 1, 100, 1471, 1472, 1473, 2960, 8192,
                                           50000, 65507));

TEST(Fragmentation, SerializeArenaMatchesBufferSerialize) {
  Datagram in;
  in.src = {net::Ipv4Addr(10, 0, 0, 1), 1111};
  in.dst = {net::Ipv4Addr(10, 0, 0, 2), 2222};
  in.payload = pattern(3000);
  for (const auto& f : fragment_datagram(in, 99)) {
    Buffer via_buffer = f.serialize();
    net::PayloadRef via_arena = f.serialize_arena();
    ASSERT_EQ(via_arena.size(), via_buffer.size());
    EXPECT_EQ(0, std::memcmp(via_arena.data(), via_buffer.data(), via_buffer.size()));
  }
}

TEST(Fragmentation, FragmentCounts) {
  EXPECT_EQ(fragment_count(0), 1u);      // UDP header alone
  EXPECT_EQ(fragment_count(1472), 1u);   // 8 + 1472 = 1480, exactly one frame
  EXPECT_EQ(fragment_count(1473), 2u);
  EXPECT_EQ(fragment_count(65507), 45u);
}

TEST(Fragmentation, OutOfOrderFragmentsStillReassemble) {
  sim::Simulator sim;
  Datagram in;
  in.src = {net::Ipv4Addr(10, 0, 0, 1), 1};
  in.dst = {net::Ipv4Addr(10, 0, 0, 2), 2};
  in.payload = pattern(5000);
  int delivered = 0;
  Reassembler reassembler(sim, sim::milliseconds(100), [&](Datagram d, std::size_t) {
    ++delivered;
    EXPECT_EQ(d.payload, in.payload);
  });
  auto fragments = fragment_datagram(in, 7);
  ASSERT_GE(fragments.size(), 3u);
  std::swap(fragments.front(), fragments.back());
  for (const auto& f : fragments) reassembler.accept(f);
  EXPECT_EQ(delivered, 1);
}

TEST(Fragmentation, DuplicateFragmentIgnored) {
  sim::Simulator sim;
  Datagram in;
  in.src = {net::Ipv4Addr(10, 0, 0, 1), 1};
  in.dst = {net::Ipv4Addr(10, 0, 0, 2), 2};
  in.payload = pattern(3000);
  int delivered = 0;
  Reassembler reassembler(sim, sim::milliseconds(100),
                          [&](Datagram, std::size_t) { ++delivered; });
  auto fragments = fragment_datagram(in, 9);
  reassembler.accept(fragments[0]);
  reassembler.accept(fragments[0]);  // duplicate must not double-count
  for (std::size_t i = 1; i < fragments.size(); ++i) reassembler.accept(fragments[i]);
  EXPECT_EQ(delivered, 1);
}

TEST(Fragmentation, IncompleteReassemblyTimesOut) {
  sim::Simulator sim;
  Datagram in;
  in.src = {net::Ipv4Addr(10, 0, 0, 1), 1};
  in.dst = {net::Ipv4Addr(10, 0, 0, 2), 2};
  in.payload = pattern(5000);
  int delivered = 0;
  Reassembler reassembler(sim, sim::milliseconds(50),
                          [&](Datagram, std::size_t) { ++delivered; });
  auto fragments = fragment_datagram(in, 11);
  reassembler.accept(fragments[0]);  // lose the rest
  EXPECT_EQ(reassembler.pending(), 1u);
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(reassembler.timeouts(), 1u);
  EXPECT_EQ(reassembler.pending(), 0u);
}

TEST(Fragmentation, MalformedBytesRejected) {
  Buffer junk{1, 2, 3};
  EXPECT_FALSE(IpFragment::parse(BytesView(junk.data(), junk.size())).has_value());
  Buffer empty;
  EXPECT_FALSE(IpFragment::parse(BytesView(empty.data(), empty.size())).has_value());
}

// A two-host cluster for socket-level tests.
class HostPairTest : public ::testing::Test {
 protected:
  HostPairTest() : cluster_(make_params()) {}

  static ClusterParams make_params() {
    ClusterParams p;
    p.n_hosts = 2;
    p.wiring = Wiring::kSingleSwitch;
    return p;
  }

  Cluster cluster_;
};

TEST_F(HostPairTest, UnicastDatagramDelivery) {
  Socket* tx = cluster_.host(0).open_socket();
  Socket* rx = cluster_.host(1).open_socket();
  rx->bind(7000);
  std::vector<Datagram> got;
  rx->set_handler([&](const Datagram& d) { got.push_back(d); });

  Buffer payload = pattern(2500);
  tx->send_to({Cluster::host_addr(1), 7000}, BytesView(payload.data(), payload.size()));
  cluster_.simulator().run();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, payload);
  EXPECT_EQ(got[0].dst.port, 7000);
  EXPECT_EQ(got[0].src.addr, Cluster::host_addr(0));
  EXPECT_NE(got[0].src.port, 0);  // ephemeral port assigned
  EXPECT_EQ(rx->stats().datagrams_delivered, 1u);
}

TEST_F(HostPairTest, NoSocketMeansDrop) {
  Socket* tx = cluster_.host(0).open_socket();
  Buffer payload = pattern(10);
  tx->send_to({Cluster::host_addr(1), 9999}, BytesView(payload.data(), payload.size()));
  cluster_.simulator().run();
  EXPECT_EQ(cluster_.host(1).stats().datagrams_no_socket, 1u);
}

TEST_F(HostPairTest, MulticastRequiresJoin) {
  net::Ipv4Addr group(239, 1, 1, 1);
  Socket* tx = cluster_.host(0).open_socket();
  Socket* rx = cluster_.host(1).open_socket();
  rx->bind(7000);
  int got = 0;
  rx->set_handler([&](const Datagram&) { ++got; });

  Buffer payload = pattern(100);
  tx->send_to({group, 7000}, BytesView(payload.data(), payload.size()));
  cluster_.simulator().run();
  EXPECT_EQ(got, 0);  // not joined: NIC filters the frame
  EXPECT_GE(cluster_.host(1).stats().frames_filtered, 1u);

  rx->join(group);
  tx->send_to({group, 7000}, BytesView(payload.data(), payload.size()));
  cluster_.simulator().run();
  EXPECT_EQ(got, 1);

  rx->leave(group);
  tx->send_to({group, 7000}, BytesView(payload.data(), payload.size()));
  cluster_.simulator().run();
  EXPECT_EQ(got, 1);
}

TEST(HostOverflow, RcvbufOverflowDropsDatagrams) {
  // A receiver whose per-datagram processing (2 ms) is slower than the
  // wire delivers (~0.7 ms per 8 KB datagram) builds a socket backlog;
  // with a 10 KB buffer it must drop.
  ClusterParams params;
  params.n_hosts = 2;
  params.wiring = Wiring::kSingleSwitch;
  params.host.recv_syscall = sim::milliseconds(2);
  Cluster cluster(params);
  Socket* tx = cluster.host(0).open_socket();
  Socket* rx = cluster.host(1).open_socket();
  rx->bind(7000);
  rx->set_rcvbuf(10'000);
  int got = 0;
  rx->set_handler([&](const Datagram&) { ++got; });

  Buffer payload = pattern(8000);
  for (int i = 0; i < 10; ++i) {
    tx->send_to({Cluster::host_addr(1), 7000}, BytesView(payload.data(), payload.size()));
  }
  cluster.simulator().run();
  EXPECT_GT(rx->stats().rcvbuf_drops, 0u);
  EXPECT_LT(got, 10);
  EXPECT_EQ(static_cast<std::uint64_t>(got), rx->stats().datagrams_delivered);
}

TEST_F(HostPairTest, SelfSendDeliversLocally) {
  Socket* a = cluster_.host(0).open_socket();
  Socket* b = cluster_.host(0).open_socket();
  b->bind(7000);
  int got = 0;
  b->set_handler([&](const Datagram&) { ++got; });
  Buffer payload = pattern(50);
  a->send_to({Cluster::host_addr(0), 7000}, BytesView(payload.data(), payload.size()));
  cluster_.simulator().run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(cluster_.host(0).stats().frames_out, 0u);  // never touched the NIC
}

TEST_F(HostPairTest, CpuSerializesWork) {
  Host& host = cluster_.host(0);
  std::vector<int> order;
  std::vector<sim::Time> at;
  host.run_on_cpu(sim::microseconds(100), [&] {
    order.push_back(1);
    at.push_back(cluster_.simulator().now());
  });
  host.run_on_cpu(sim::microseconds(50), [&] {
    order.push_back(2);
    at.push_back(cluster_.simulator().now());
  });
  cluster_.simulator().run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(at[0], sim::microseconds(100));
  EXPECT_EQ(at[1], sim::microseconds(150));  // queued behind the first
  EXPECT_EQ(host.stats().cpu_busy, sim::microseconds(150));
}

TEST_F(HostPairTest, SndbufBlocksLargeDatagramPipelining) {
  // Two 50 KB datagrams: the second sendto must wait for the first to
  // largely drain (SO_SNDBUF is 64 KB), so its completion is gated by the
  // wire, not just CPU cost.
  Socket* tx = cluster_.host(0).open_socket();
  Socket* rx = cluster_.host(1).open_socket();
  rx->bind(7000);
  std::vector<sim::Time> deliveries;
  rx->set_handler([&](const Datagram&) {
    deliveries.push_back(cluster_.simulator().now());
  });
  Buffer payload = pattern(50'000);
  tx->send_to({Cluster::host_addr(1), 7000}, BytesView(payload.data(), payload.size()));
  tx->send_to({Cluster::host_addr(1), 7000}, BytesView(payload.data(), payload.size()));
  cluster_.simulator().run();
  ASSERT_EQ(deliveries.size(), 2u);
  // Without blocking, both CPU tasks finish ~1 ms apart while the first
  // datagram needs ~4.1 ms of wire; the gap between deliveries would then
  // be pure wire time. With blocking, the second send starts only after
  // most of the first datagram drained, so the spacing must exceed the
  // datagram's wire time.
  sim::Time wire_time = sim::transmission_time(50'000, 100e6);
  EXPECT_GT(deliveries[1] - deliveries[0], wire_time);
}

TEST_F(HostPairTest, MaxSizeDatagramExceedsSndbufYetDelivers) {
  // 65507 B of payload occupies more wire than the whole 64 KB SO_SNDBUF:
  // each sendto must wait for an empty backlog, but both datagrams arrive.
  Socket* tx = cluster_.host(0).open_socket();
  Socket* rx = cluster_.host(1).open_socket();
  rx->bind(7000);
  rx->set_rcvbuf(256 * 1024);
  int got = 0;
  rx->set_handler([&](const Datagram& d) {
    EXPECT_EQ(d.payload.size(), kMaxUdpPayload);
    ++got;
  });
  Buffer payload = pattern(kMaxUdpPayload);
  tx->send_to({Cluster::host_addr(1), 7000}, BytesView(payload.data(), payload.size()));
  tx->send_to({Cluster::host_addr(1), 7000}, BytesView(payload.data(), payload.size()));
  cluster_.simulator().run();
  EXPECT_EQ(got, 2);
}

TEST_F(HostPairTest, EphemeralPortsAreDistinct) {
  Socket* rx = cluster_.host(1).open_socket();
  rx->bind(7000);
  std::set<std::uint16_t> ports;
  Buffer payload = pattern(8);
  for (int i = 0; i < 20; ++i) {
    Socket* tx = cluster_.host(0).open_socket();
    tx->send_to({Cluster::host_addr(1), 7000}, BytesView(payload.data(), payload.size()));
    std::uint16_t port = tx->local_endpoint().port;
    EXPECT_GE(port, 49152);
    EXPECT_TRUE(ports.insert(port).second) << "duplicate ephemeral port " << port;
  }
  cluster_.simulator().run();
  EXPECT_EQ(rx->stats().datagrams_delivered, 20u);
}

TEST_F(HostPairTest, SharedMulticastPortDeliversToEveryJoinedSocket) {
  net::Ipv4Addr group(239, 5, 5, 5);
  Socket* a = cluster_.host(1).open_socket();
  Socket* b = cluster_.host(1).open_socket();
  for (Socket* s : {a, b}) {
    s->bind(7000);
    s->join(group);
  }
  int got_a = 0, got_b = 0;
  a->set_handler([&](const Datagram&) { ++got_a; });
  b->set_handler([&](const Datagram&) { ++got_b; });

  Socket* tx = cluster_.host(0).open_socket();
  Buffer payload = pattern(64);
  tx->send_to({group, 7000}, BytesView(payload.data(), payload.size()));
  cluster_.simulator().run();
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(got_b, 1);

  // Unicast to the shared port goes to exactly one socket.
  tx->send_to({Cluster::host_addr(1), 7000}, BytesView(payload.data(), payload.size()));
  cluster_.simulator().run();
  EXPECT_EQ(got_a + got_b, 3);
}

TEST(Reassembly, InterleavedDatagramsDoNotCorrupt) {
  sim::Simulator sim;
  Datagram first, second;
  first.src = second.src = {net::Ipv4Addr(10, 0, 0, 1), 1};
  first.dst = second.dst = {net::Ipv4Addr(10, 0, 0, 2), 2};
  first.payload = pattern(4000);
  second.payload = pattern(6000);
  std::vector<Buffer> out;
  Reassembler reassembler(sim, sim::milliseconds(100), [&](Datagram d, std::size_t) {
    out.push_back(std::move(d.payload));
  });
  auto f1 = fragment_datagram(first, 1);
  auto f2 = fragment_datagram(second, 2);
  // Interleave the two fragment streams.
  std::size_t i = 0, j = 0;
  while (i < f1.size() || j < f2.size()) {
    if (i < f1.size()) reassembler.accept(f1[i++]);
    if (j < f2.size()) reassembler.accept(f2[j++]);
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], first.payload);
  EXPECT_EQ(out[1], second.payload);
}

TEST(Cluster, TwoSwitchTopologyMatchesFigure7) {
  ClusterParams params;
  params.n_hosts = 31;
  params.wiring = Wiring::kTwoSwitch;
  Cluster cluster(params);
  ASSERT_EQ(cluster.switches().size(), 2u);
  // 16 hosts + uplink + spare on A; 15 hosts + uplink + spare on B.
  EXPECT_EQ(cluster.switches()[0]->n_ports(), 18u);
  EXPECT_EQ(cluster.switches()[1]->n_ports(), 17u);
  EXPECT_EQ(cluster.host_addr(0).str(), "10.0.0.1");
  EXPECT_EQ(cluster.host_addr(30).str(), "10.0.0.31");
}

TEST(Cluster, CrossSwitchDelivery) {
  ClusterParams params;
  params.n_hosts = 31;
  params.wiring = Wiring::kTwoSwitch;
  Cluster cluster(params);
  // Host 0 (switch A) to host 30 (switch B), across the uplink.
  Socket* tx = cluster.host(0).open_socket();
  Socket* rx = cluster.host(30).open_socket();
  rx->bind(7000);
  int got = 0;
  rx->set_handler([&](const Datagram&) { ++got; });
  Buffer payload = pattern(1000);
  tx->send_to({Cluster::host_addr(30), 7000}, BytesView(payload.data(), payload.size()));
  cluster.simulator().run();
  EXPECT_EQ(got, 1);
}

TEST(Cluster, MulticastReachesBothSwitches) {
  ClusterParams params;
  params.n_hosts = 20;
  params.wiring = Wiring::kTwoSwitch;
  Cluster cluster(params);
  net::Ipv4Addr group(239, 0, 0, 1);
  int got = 0;
  for (std::size_t i = 1; i < 20; ++i) {
    Socket* rx = cluster.host(i).open_socket();
    rx->bind(7000);
    rx->join(group);
    rx->set_handler([&](const Datagram&) { ++got; });
  }
  Socket* tx = cluster.host(0).open_socket();
  Buffer payload = pattern(100);
  tx->send_to({group, 7000}, BytesView(payload.data(), payload.size()));
  cluster.simulator().run();
  EXPECT_EQ(got, 19);
}

TEST(Cluster, SnoopingFiltersNonMembersAcrossSwitches) {
  ClusterParams params;
  params.n_hosts = 20;
  params.wiring = Wiring::kTwoSwitch;  // members end up on both switches
  params.multicast_snooping = true;
  Cluster cluster(params);
  net::Ipv4Addr group(239, 0, 0, 1);
  int got = 0;
  // Only hosts 1..5 and 17..19 join; the rest stay silent bystanders.
  std::vector<std::size_t> members = {1, 2, 3, 4, 5, 17, 18, 19};
  for (std::size_t i : members) {
    Socket* rx = cluster.host(i).open_socket();
    rx->bind(7000);
    rx->join(group);
    rx->set_handler([&](const Datagram&) { ++got; });
  }
  Socket* tx = cluster.host(0).open_socket();
  Buffer payload = pattern(3000);
  tx->send_to({group, 7000}, BytesView(payload.data(), payload.size()));
  cluster.simulator().run();
  EXPECT_EQ(got, static_cast<int>(members.size()));
  // Bystanders never saw a frame — the switch filtered, not their NIC.
  for (std::size_t i : {std::size_t{6}, std::size_t{10}, std::size_t{16}}) {
    EXPECT_EQ(cluster.host(i).stats().frames_in, 0u) << "host " << i;
    EXPECT_EQ(cluster.host(i).stats().frames_filtered, 0u) << "host " << i;
  }
}

TEST(Cluster, SnoopingTracksLeaves) {
  ClusterParams params;
  params.n_hosts = 3;
  params.wiring = Wiring::kSingleSwitch;
  params.multicast_snooping = true;
  Cluster cluster(params);
  net::Ipv4Addr group(239, 0, 0, 2);
  Socket* rx = cluster.host(1).open_socket();
  rx->bind(7000);
  rx->join(group);
  int got = 0;
  rx->set_handler([&](const Datagram&) { ++got; });

  Socket* tx = cluster.host(0).open_socket();
  Buffer payload = pattern(100);
  tx->send_to({group, 7000}, BytesView(payload.data(), payload.size()));
  cluster.simulator().run();
  EXPECT_EQ(got, 1);

  rx->leave(group);
  tx->send_to({group, 7000}, BytesView(payload.data(), payload.size()));
  cluster.simulator().run();
  EXPECT_EQ(got, 1);
  // After the leave the switch floods again (unknown group) but the NIC
  // filters, or the switch drops it as memberless — either way, no
  // delivery and no crash.
}

TEST(Cluster, SharedBusWiringDelivers) {
  ClusterParams params;
  params.n_hosts = 5;
  params.wiring = Wiring::kSharedBus;
  Cluster cluster(params);
  net::Ipv4Addr group(239, 0, 0, 1);
  int got = 0;
  for (std::size_t i = 1; i < 5; ++i) {
    Socket* rx = cluster.host(i).open_socket();
    rx->bind(7000);
    rx->join(group);
    rx->set_handler([&](const Datagram&) { ++got; });
  }
  Socket* tx = cluster.host(0).open_socket();
  Buffer payload = pattern(4000);
  tx->send_to({group, 7000}, BytesView(payload.data(), payload.size()));
  cluster.simulator().run();
  EXPECT_EQ(got, 4);
  EXPECT_GT(cluster.bus()->stats().frames_delivered, 0u);
}

TEST(Cluster, FrameErrorsCauseLoss) {
  ClusterParams params;
  params.n_hosts = 2;
  params.wiring = Wiring::kSingleSwitch;
  params.link.frame_error_rate = 0.5;
  params.seed = 9;
  Cluster cluster(params);
  Socket* tx = cluster.host(0).open_socket();
  Socket* rx = cluster.host(1).open_socket();
  rx->bind(7000);
  int got = 0;
  rx->set_handler([&](const Datagram&) { ++got; });
  Buffer payload = pattern(100);
  for (int i = 0; i < 50; ++i) {
    tx->send_to({Cluster::host_addr(1), 7000}, BytesView(payload.data(), payload.size()));
  }
  cluster.simulator().run();
  // Each datagram crosses two lossy hops at 50%: ~25% survive.
  EXPECT_LT(got, 40);
  EXPECT_GT(got, 0);
}

}  // namespace
}  // namespace rmc::inet
