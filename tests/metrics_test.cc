// Unit tests for the metrics registry (counters, gauges, latency
// histograms, JSON snapshot) and the flight recorder ring buffer.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/metrics.h"

namespace rmc::metrics {
namespace {

TEST(CounterMetric, AccumulatesAndSaturates) {
  CounterMetric c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.inc(UINT64_MAX);
  EXPECT_EQ(c.value(), UINT64_MAX);  // saturates, like rmc::Counter
}

TEST(Gauge, SetAndHighWater) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(5.0);
  EXPECT_EQ(g.value(), 5.0);
  g.set_max(3.0);  // below the current value: no change
  EXPECT_EQ(g.value(), 5.0);
  g.set_max(9.5);
  EXPECT_EQ(g.value(), 9.5);
  g.set(2.0);  // plain set still overwrites downward
  EXPECT_EQ(g.value(), 2.0);
}

TEST(LatencyHistogram, ExactStatsComeFromRunningStat) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_us(50.0), 0.0);
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean_us(), 2.5);
  EXPECT_DOUBLE_EQ(h.min_us(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_us(), 4.0);
}

TEST(LatencyHistogram, RecordSecondsConvertsToMicroseconds) {
  LatencyHistogram h;
  h.record_seconds(0.0025);
  EXPECT_DOUBLE_EQ(h.min_us(), 2500.0);
  EXPECT_DOUBLE_EQ(h.max_us(), 2500.0);
}

TEST(LatencyHistogram, BucketBoundsAreGeometric) {
  EXPECT_NEAR(LatencyHistogram::bucket_bound_us(0), 0.1, 1e-12);
  EXPECT_NEAR(LatencyHistogram::bucket_bound_us(2), 0.2, 1e-12);
  EXPECT_NEAR(LatencyHistogram::bucket_bound_us(4), 0.4, 1e-12);
  // Consecutive bounds grow by sqrt(2): ~±19% worst-case bound error.
  for (std::size_t i = 1; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_NEAR(LatencyHistogram::bucket_bound_us(i) /
                    LatencyHistogram::bucket_bound_us(i - 1),
                std::sqrt(2.0), 1e-9);
  }
  // The range covers a full LAN run: the last bound exceeds 100 seconds.
  EXPECT_GT(LatencyHistogram::bucket_bound_us(LatencyHistogram::kBuckets - 1), 1e8);
}

TEST(LatencyHistogram, ValuesLandInTheBucketBelowTheirBound) {
  LatencyHistogram h;
  h.record(0.05);  // below the first bound -> bucket 0
  EXPECT_EQ(h.bucket_count(0), 1u);
  h.record(1.0);
  h.record(1e12);  // far beyond the range: absorbed by the last bucket
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    total += h.bucket_count(i);
    if (h.bucket_count(i) > 0 && i > 0) {
      // Every counted bucket's bound brackets at least one recorded value.
      EXPECT_LE(LatencyHistogram::bucket_bound_us(i - 1), h.max_us());
    }
  }
  EXPECT_EQ(total, h.count());
}

TEST(LatencyHistogram, PercentilesClampToObservedExtremes) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.record(100.0);
  // All mass in one bucket: interpolation cannot stray outside [min, max].
  EXPECT_DOUBLE_EQ(h.p50_us(), 100.0);
  EXPECT_DOUBLE_EQ(h.p95_us(), 100.0);
  EXPECT_DOUBLE_EQ(h.p99_us(), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile_us(0.0), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile_us(100.0), 100.0);
}

TEST(LatencyHistogram, PercentilesAreMonotonicAndOrdered) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  double prev = 0.0;
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = h.percentile_us(p);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, h.min_us());
    EXPECT_LE(v, h.max_us());
    prev = v;
  }
  // Bucket interpolation: the estimate should land within one bucket
  // ratio (sqrt 2) of the true percentile.
  EXPECT_GT(h.p50_us(), 500.0 / std::sqrt(2.0));
  EXPECT_LT(h.p50_us(), 500.0 * std::sqrt(2.0));
  EXPECT_GT(h.p99_us(), 990.0 / std::sqrt(2.0));
}

TEST(LatencyHistogram, NegativeAndNanClampToZero) {
  LatencyHistogram h;
  h.record(-5.0);
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min_us(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_us(), 0.0);
  EXPECT_EQ(h.bucket_count(0), 2u);
}

TEST(Registry, CreateOnUseAndFind) {
  Registry r;
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.find_counter("c"), nullptr);
  EXPECT_EQ(r.find_gauge("g"), nullptr);
  EXPECT_EQ(r.find_histogram("h"), nullptr);

  r.counter("c").inc(3);
  r.gauge("g").set(1.5);
  r.histogram("h").record(10.0);
  EXPECT_EQ(r.size(), 3u);
  ASSERT_NE(r.find_counter("c"), nullptr);
  EXPECT_EQ(r.find_counter("c")->value(), 3u);
  ASSERT_NE(r.find_gauge("g"), nullptr);
  EXPECT_DOUBLE_EQ(r.find_gauge("g")->value(), 1.5);
  ASSERT_NE(r.find_histogram("h"), nullptr);
  EXPECT_EQ(r.find_histogram("h")->count(), 1u);

  // Same name -> same metric, not a new one.
  r.counter("c").inc();
  EXPECT_EQ(r.find_counter("c")->value(), 4u);
  EXPECT_EQ(r.size(), 3u);

  r.clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.find_counter("c"), nullptr);
}

TEST(Registry, EmptyJsonIsStillAnObject) {
  Registry r;
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
}

TEST(Registry, JsonContainsEveryTierAndEscapesNames) {
  Registry r;
  r.counter("sender.data_packets_sent").inc(7);
  r.gauge("net.switch0.port1.queue_hwm_frames").set_max(12.0);
  auto& h = r.histogram("receiver.delivery_latency_us");
  h.record(100.0);
  h.record(200.0);
  r.counter("weird\"name").inc();

  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"sender.data_packets_sent\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"net.switch0.port1.queue_hwm_frames\": 12"),
            std::string::npos);
  EXPECT_NE(json.find("\"receiver.delivery_latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"p50_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": ["), std::string::npos);
  EXPECT_NE(json.find("\"weird\\\"name\""), std::string::npos);

  // write_json emits the same bytes as to_json.
  char* data = nullptr;
  std::size_t size = 0;
  FILE* mem = open_memstream(&data, &size);
  r.write_json(mem);
  std::fclose(mem);
  std::string written(data, size);
  free(data);
  EXPECT_EQ(written, json);
}

TEST(Registry, EmptyHistogramElidesBuckets) {
  Registry r;
  (void)r.histogram("empty");
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"count\": 0"), std::string::npos);
  EXPECT_EQ(json.find("\"buckets\""), std::string::npos);
}

// merge() is the sweep engine's fold: merging per-run registries in run
// order must equal accumulating every run into one registry.

TEST(RegistryMerge, CountersSumAndSaturate) {
  Registry a, b;
  a.counter("shared").inc(40);
  b.counter("shared").inc(2);
  b.counter("only_b").inc(7);
  a.merge(b);
  EXPECT_EQ(a.counter("shared").value(), 42u);
  EXPECT_EQ(a.counter("only_b").value(), 7u);

  Registry c, d;
  c.counter("sat").inc(UINT64_MAX - 5);
  d.counter("sat").inc(10);
  c.merge(d);
  EXPECT_EQ(c.counter("sat").value(), UINT64_MAX);  // saturates, not wraps
}

TEST(RegistryMerge, GaugesKeepTheHighWaterMark) {
  Registry a, b;
  a.gauge("depth").set(5.0);
  b.gauge("depth").set(3.0);
  b.gauge("only_b").set(1.5);
  a.merge(b);
  EXPECT_EQ(a.gauge("depth").value(), 5.0);  // lower incoming value ignored
  EXPECT_EQ(a.gauge("only_b").value(), 1.5);
  Registry c;
  c.gauge("depth").set(9.0);
  a.merge(c);
  EXPECT_EQ(a.gauge("depth").value(), 9.0);  // higher incoming value wins
}

TEST(RegistryMerge, HistogramsAddBucketsAndExactStats) {
  Registry a, b;
  for (double v : {1.0, 2.0}) a.histogram("lat").record(v);
  for (double v : {4.0, 100.0}) b.histogram("lat").record(v);
  a.merge(b);

  const LatencyHistogram& h = *a.find_histogram("lat");
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min_us(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_us(), 100.0);
  EXPECT_NEAR(h.mean_us(), 26.75, 1e-9);

  // Bucket-wise addition: the merged buckets are the element-wise sum.
  LatencyHistogram sequential;
  for (double v : {1.0, 2.0, 4.0, 100.0}) sequential.record(v);
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(h.bucket_count(i), sequential.bucket_count(i)) << "bucket " << i;
  }
}

TEST(RegistryMerge, OrderedFoldEqualsDirectAccumulation) {
  // Three "runs", folded run-by-run vs accumulated straight into one
  // registry: identical JSON snapshots, byte for byte.
  auto run = [](Registry& r, int i) {
    r.counter("frames").inc(10 * (i + 1));
    r.gauge("queue_peak").set_max(2.0 * i);
    r.histogram("rtt").record(1.0 + i);
  };

  Registry direct;
  Registry folded;
  for (int i = 0; i < 3; ++i) {
    run(direct, i);
    Registry per_run;
    run(per_run, i);
    folded.merge(per_run);
  }
  EXPECT_EQ(folded.to_json(), direct.to_json());
}

TEST(RegistryMerge, EmptySourceAndSelflessTargetAreNoOps) {
  Registry a;
  a.counter("c").inc(3);
  Registry empty;
  a.merge(empty);
  EXPECT_EQ(a.counter("c").value(), 3u);
  EXPECT_EQ(a.size(), 1u);

  Registry fresh;
  fresh.merge(a);  // merge into an empty registry copies everything
  EXPECT_EQ(fresh.to_json(), a.to_json());
}

}  // namespace
}  // namespace rmc::metrics

namespace rmc {
namespace {

TEST(FlightRecorder, RecordsAndSnapshotsOldestFirst) {
  FlightRecorder rec(8);
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.size(), 0u);
  rec.record(10, "sender", "tx", 0, 1, 2);
  rec.record(20, "receiver", "ack", 3, 4, 5);
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.total_recorded(), 2u);

  auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].t_ns, 10);
  EXPECT_STREQ(events[0].category, "sender");
  EXPECT_STREQ(events[0].name, "tx");
  EXPECT_EQ(events[1].t_ns, 20);
  EXPECT_EQ(events[1].node, 3u);
  EXPECT_EQ(events[1].a, 4u);
  EXPECT_EQ(events[1].b, 5u);
}

TEST(FlightRecorder, RingOverwritesOldestWhenFull) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record(i, "net", "frame", 0, static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_EQ(rec.size(), 4u);  // bounded
  EXPECT_EQ(rec.total_recorded(), 10u);
  auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // The survivors are the newest four, oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].t_ns, static_cast<std::int64_t>(6 + i));
  }
}

TEST(FlightRecorder, DisabledDropsEvents) {
  FlightRecorder rec(4);
  rec.set_enabled(false);
  rec.record(1, "sender", "tx");
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  rec.set_enabled(true);
  rec.record(2, "sender", "tx");
  EXPECT_EQ(rec.size(), 1u);
}

TEST(FlightRecorder, ClearAndResizeEmptyTheRing) {
  FlightRecorder rec(4);
  rec.record(1, "a", "b");
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  rec.record(2, "a", "b");
  rec.set_capacity(16);
  EXPECT_EQ(rec.capacity(), 16u);
  EXPECT_EQ(rec.size(), 0u);  // resize clears
}

TEST(FlightRecorder, DumpsOneJsonObjectPerLine) {
  FlightRecorder rec(4);
  rec.record(1500, "sender", "window_stall", 0, 42, 7);
  char* data = nullptr;
  std::size_t size = 0;
  FILE* mem = open_memstream(&data, &size);
  rec.dump_jsonl(mem);
  std::fclose(mem);
  std::string out(data, size);
  free(data);
  EXPECT_EQ(out,
            "{\"t\": 1500, \"cat\": \"sender\", \"ev\": \"window_stall\", "
            "\"node\": 0, \"a\": 42, \"b\": 7}\n");
}

TEST(FlightRecorder, GlobalInstanceIsAvailable) {
  FlightRecorder& rec = flight_recorder();
  EXPECT_GT(rec.capacity(), 0u);
  // Leave the global alone beyond existence: protocol tests in the same
  // process rely on it accumulating.
}

}  // namespace
}  // namespace rmc
