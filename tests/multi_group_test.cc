// Two reliable multicast groups sharing one cluster and one set of
// receiver hosts, transferring concurrently: sessions, sockets and
// acknowledgment streams must not bleed between groups, and both
// transfers must complete with intact payloads while sharing the wire.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "inet/cluster.h"
#include "protocol_test_util.h"
#include "rmcast/receiver.h"
#include "rmcast/sender.h"
#include "runtime/sim_runtime.h"

namespace rmc {
namespace {

struct Group {
  rmcast::GroupMembership membership;
  std::unique_ptr<rt::UdpSocket> sender_socket;
  std::unique_ptr<rmcast::MulticastSender> sender;
  std::vector<std::unique_ptr<rt::UdpSocket>> sockets;
  std::vector<std::unique_ptr<rmcast::MulticastReceiver>> receivers;
  std::vector<Buffer> delivered;
};

class TwoGroupFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kReceivers = 4;

  TwoGroupFixture() : cluster_(make_params()) {
    // Hosts: 0 and 1 are the two senders; 2..5 are receivers of BOTH groups.
    for (std::size_t h = 0; h < 6; ++h) {
      runtimes_.push_back(std::make_unique<rt::SimRuntime>(cluster_.host(h)));
    }
    rmcast::ProtocolConfig config;
    config.kind = rmcast::ProtocolKind::kNakPolling;
    config.packet_size = 4000;
    config.window_size = 12;
    config.poll_interval = 9;

    for (std::size_t g = 0; g < 2; ++g) {
      auto group = std::make_unique<Group>();
      group->membership.group = {net::Ipv4Addr(239, 0, 0, static_cast<std::uint8_t>(g + 1)),
                                 static_cast<std::uint16_t>(5000 + g)};
      group->membership.sender_control = {inet::Cluster::host_addr(g),
                                          static_cast<std::uint16_t>(6000 + g)};
      for (std::size_t i = 0; i < kReceivers; ++i) {
        group->membership.receiver_control.push_back(
            {inet::Cluster::host_addr(i + 2), static_cast<std::uint16_t>(7000 + g)});
      }

      inet::Socket* raw = cluster_.host(g).open_socket();
      raw->bind(group->membership.sender_control.port);
      group->sender_socket = runtimes_[g]->wrap(raw);
      group->sender = std::make_unique<rmcast::MulticastSender>(
          *runtimes_[g], *group->sender_socket, group->membership, config);

      group->delivered.resize(kReceivers);
      for (std::size_t i = 0; i < kReceivers; ++i) {
        inet::Host& host = cluster_.host(i + 2);
        inet::Socket* data = host.open_socket();
        data->bind(group->membership.group.port);
        data->join(group->membership.group.addr);
        group->sockets.push_back(runtimes_[i + 2]->wrap(data));
        auto* data_socket = group->sockets.back().get();
        inet::Socket* control = host.open_socket();
        control->bind(group->membership.receiver_control[i].port);
        group->sockets.push_back(runtimes_[i + 2]->wrap(control));
        auto* control_socket = group->sockets.back().get();
        group->receivers.push_back(std::make_unique<rmcast::MulticastReceiver>(
            *runtimes_[i + 2], *data_socket, *control_socket, group->membership, i,
            config));
        Group* gp = group.get();
        group->receivers[i]->set_message_handler(
            [gp, i](const Buffer& message, std::uint32_t) { gp->delivered[i] = message; });
      }
      groups_.push_back(std::move(group));
    }
  }

  static inet::ClusterParams make_params() {
    inet::ClusterParams p;
    p.n_hosts = 6;
    p.wiring = inet::Wiring::kSingleSwitch;
    return p;
  }

  inet::Cluster cluster_;
  std::vector<std::unique_ptr<rt::SimRuntime>> runtimes_;
  std::vector<std::unique_ptr<Group>> groups_;
};

TEST_F(TwoGroupFixture, ConcurrentTransfersStayIsolated) {
  Buffer message_a = test::pattern(200'000);
  Buffer message_b = test::pattern(120'000);
  // Different content so cross-delivery would be caught.
  for (auto& b : message_b) b = static_cast<std::uint8_t>(b ^ 0xFF);

  int done = 0;
  groups_[0]->sender->send(BytesView(message_a.data(), message_a.size()),
                           [&](const rmcast::SendOutcome&) { ++done; });
  groups_[1]->sender->send(BytesView(message_b.data(), message_b.size()),
                           [&](const rmcast::SendOutcome&) { ++done; });
  while (done < 2 && cluster_.simulator().now() < sim::seconds(30.0)) {
    if (!cluster_.simulator().step()) break;
  }
  ASSERT_EQ(done, 2);
  for (std::size_t i = 0; i < kReceivers; ++i) {
    EXPECT_EQ(groups_[0]->delivered[i], message_a) << "group A receiver " << i;
    EXPECT_EQ(groups_[1]->delivered[i], message_b) << "group B receiver " << i;
  }
  // No cross-group control traffic was misattributed.
  EXPECT_EQ(groups_[0]->sender->stats().stale_packets, 0u);
  EXPECT_EQ(groups_[1]->sender->stats().stale_packets, 0u);
}

TEST_F(TwoGroupFixture, ConcurrentTransfersShareTheWireGracefully) {
  // Measure one group alone, then both together: the shared receivers'
  // CPUs and links slow things down, but completion must be well under
  // the doubled time a serialised run would take (multicast transfers
  // interleave, they do not queue behind each other).
  Buffer message = test::pattern(200'000);

  bool solo_done = false;
  groups_[0]->sender->send(BytesView(message.data(), message.size()),
                           [&](const rmcast::SendOutcome&) { solo_done = true; });
  while (!solo_done && cluster_.simulator().step()) {
  }
  ASSERT_TRUE(solo_done);
  const double solo = sim::to_seconds(cluster_.simulator().now());

  sim::Time start = cluster_.simulator().now();
  int done = 0;
  groups_[0]->sender->send(BytesView(message.data(), message.size()),
                           [&](const rmcast::SendOutcome&) { ++done; });
  groups_[1]->sender->send(BytesView(message.data(), message.size()),
                           [&](const rmcast::SendOutcome&) { ++done; });
  while (done < 2 && cluster_.simulator().now() < sim::seconds(30.0)) {
    if (!cluster_.simulator().step()) break;
  }
  ASSERT_EQ(done, 2);
  const double both = sim::to_seconds(cluster_.simulator().now() - start);
  EXPECT_GT(both, solo);            // contention is real
  EXPECT_LT(both, 2.2 * solo);      // but transfers overlap, not serialise
}

}  // namespace
}  // namespace rmc
