// The multi-tenant tier's contract: determinism of the whole TenantMix
// fold at any sweep parallelism, isolation (one tenant's dead receivers
// cannot stall another tenant's transfer), fairness sanity on symmetric
// tenants, the GroupDirectory collision guard, and the contention
// matrix's shape.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "harness/sweep.h"
#include "harness/tenant.h"
#include "rmcast/engine/registry.h"
#include "rmcast/session.h"

namespace rmc::harness {
namespace {

// The reference mix for the determinism rows: small, churn-enabled,
// cross-protocol, colliding placement — every moving part engaged.
TenantMixSpec small_mix(std::uint64_t seed) {
  TenantMixSpec spec;
  spec.n_tenants = 6;
  spec.receivers_per_tenant = 3;
  spec.message_bytes = 60'000;
  for (const rmcast::EngineEntry& entry : rmcast::ProtocolRegistry::instance().entries()) {
    spec.kinds.push_back(entry.kind);
  }
  spec.placement = TenantPlacementPolicy::kColliding;
  spec.n_hosts = 12;
  spec.arrival_rate_hz = 800.0;
  spec.churn.late_join_fraction = 0.2;
  spec.churn.leave_fraction = 0.2;
  spec.seed = seed;
  return spec;
}

// Runs `n_cells` mixes (seeds seed, seed+1, ...) through a SweepRunner at
// the given parallelism, folding every tenant registry into `sink` in
// ticket order. Returns each cell's deterministic report.
std::vector<std::string> run_cells_at_jobs(std::size_t jobs, std::size_t n_cells,
                                           std::uint64_t seed, metrics::Registry* sink,
                                           std::vector<std::string>* tenant_metrics) {
  std::vector<TenantMixResult> results(n_cells);
  {
    SweepRunner::Options options;
    options.jobs = jobs;
    options.metrics = sink;
    SweepRunner runner(options);
    std::vector<SweepRunner::Ticket> tickets;
    for (std::size_t i = 0; i < n_cells; ++i) {
      TenantMixSpec spec = small_mix(seed + i);
      TenantMixResult* slot = &results[i];
      tickets.push_back(runner.submit_task([spec, slot](metrics::Registry* registry) {
        TenantMixSpec s = spec;
        s.metrics = registry;
        *slot = run_tenant_mix(s);
        RunResult out;
        out.completed = slot->completed;
        out.error = slot->error;
        out.seconds = slot->makespan_seconds;
        out.events_executed = slot->events_executed;
        return out;
      }));
    }
    for (SweepRunner::Ticket t : tickets) {
      EXPECT_TRUE(runner.result(t).completed) << runner.result(t).error;
    }
  }  // runner drains + folds before the sink is read
  std::vector<std::string> reports;
  for (const TenantMixResult& r : results) {
    reports.push_back(r.to_json());
    if (tenant_metrics != nullptr) {
      for (const TenantReport& t : r.tenants) tenant_metrics->push_back(t.metrics_json);
    }
  }
  return reports;
}

TEST(MultiTenantDeterminism, FoldIsByteIdenticalAcrossJobs) {
  metrics::Registry sink1, sink4;
  std::vector<std::string> tenants1, tenants4;
  const std::vector<std::string> reports1 =
      run_cells_at_jobs(1, 3, /*seed=*/7, &sink1, &tenants1);
  const std::vector<std::string> reports4 =
      run_cells_at_jobs(4, 3, /*seed=*/7, &sink4, &tenants4);
  // Cell reports, every tenant's private metrics snapshot, and the folded
  // sink: all byte-identical regardless of worker count.
  EXPECT_EQ(reports1, reports4);
  EXPECT_EQ(tenants1, tenants4);
  EXPECT_EQ(sink1.to_json(), sink4.to_json());
  EXPECT_FALSE(tenants1.empty());
}

TEST(MultiTenantDeterminism, SameSeedSameReportAndTrace) {
  trace::Tracer tracer_a, tracer_b;
  TenantMixSpec spec_a = small_mix(3);
  spec_a.tracer = &tracer_a;
  TenantMixSpec spec_b = small_mix(3);
  spec_b.tracer = &tracer_b;
  const TenantMixResult a = run_tenant_mix(spec_a);
  const TenantMixResult b = run_tenant_mix(spec_b);
  ASSERT_TRUE(a.completed) << a.error;
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_TRUE(tracer_a.same_as(tracer_b));
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    EXPECT_EQ(a.tenants[t].metrics_json, b.tenants[t].metrics_json) << t;
  }
}

// Isolation: tenants on disjoint hosts only meet in the switch. Killing
// every receiver host of tenant 0 must leave tenants 1 and 2 delivering
// normally while tenant 0's sender evicts its way to completion.
TEST(MultiTenantIsolation, CrashedTenantCannotStallOthers) {
  constexpr std::size_t kTenants = 3;
  constexpr std::size_t kReceivers = 4;
  inet::ClusterParams params;
  params.n_hosts = kTenants * (kReceivers + 1);
  params.seed = 5;
  inet::Cluster cluster(params);

  rmcast::ProtocolConfig config;
  const rmcast::EngineEntry& entry =
      rmcast::ProtocolRegistry::instance().entry(rmcast::ProtocolKind::kAck);
  entry.traits.apply_recommended_tuning(config, 100'000, kReceivers);
  config.max_retransmit_rounds = 3;

  rmcast::GroupDirectory directory;
  std::vector<std::unique_ptr<rmcast::Session>> sessions;
  for (std::size_t t = 0; t < kTenants; ++t) {
    rmcast::SessionPlacement placement;
    placement.sender_host = t * (kReceivers + 1);
    for (std::size_t r = 0; r < kReceivers; ++r) {
      placement.receiver_hosts.push_back(placement.sender_host + 1 + r);
    }
    placement.group = {net::Ipv4Addr(0xEF00'0200u + static_cast<std::uint32_t>(t)),
                       static_cast<std::uint16_t>(21'000 + 3 * t)};
    placement.sender_control_port = static_cast<std::uint16_t>(21'001 + 3 * t);
    placement.receiver_control_port = static_cast<std::uint16_t>(21'002 + 3 * t);
    placement.session_base = static_cast<std::uint32_t>(t + 1) << 16;
    sessions.push_back(std::make_unique<rmcast::Session>(cluster, placement, config,
                                                         nullptr, &directory));
  }

  const Buffer message(100'000, 0x5A);
  std::vector<rmcast::SendOutcome> outcomes(kTenants);
  std::size_t n_done = 0;
  sim::Simulator& simulator = cluster.simulator();
  for (std::size_t t = 0; t < kTenants; ++t) {
    rmcast::Session& session = *sessions[t];
    rmcast::SendOutcome* slot = &outcomes[t];
    simulator.schedule_at(sim::milliseconds(1), [&session, &message, slot, &n_done] {
      session.send(BytesView(message.data(), message.size()),
                   [slot, &n_done](const rmcast::SendOutcome& outcome) {
                     *slot = outcome;
                     ++n_done;
                   });
    });
  }
  // All four of tenant 0's receiver hosts fail-stop mid-transfer.
  simulator.schedule_at(sim::milliseconds(3), [&cluster] {
    for (std::size_t r = 0; r < kReceivers; ++r) cluster.set_host_down(1 + r, true);
  });

  while (n_done < kTenants && simulator.now() < sim::seconds(120.0)) {
    if (!simulator.step()) break;
  }
  ASSERT_EQ(n_done, kTenants) << "a tenant never completed";
  EXPECT_EQ(outcomes[0].n_evicted(), kReceivers);
  EXPECT_TRUE(outcomes[1].all_delivered());
  EXPECT_TRUE(outcomes[2].all_delivered());
  // The victims' wreckage must not have slowed the survivors into their
  // own eviction timers: survivors finish in normal transfer time, not
  // eviction time.
  EXPECT_LT(outcomes[1].elapsed, sim::seconds(1.0));
  EXPECT_LT(outcomes[2].elapsed, sim::seconds(1.0));
}

TEST(MultiTenantFairness, SymmetricTenantsShareTheFabricFairly) {
  TenantMixSpec spec;
  spec.n_tenants = 6;
  spec.receivers_per_tenant = 3;
  spec.message_bytes = 100'000;
  spec.kinds = {rmcast::ProtocolKind::kAck};  // identical tenants
  spec.placement = TenantPlacementPolicy::kDisjoint;
  spec.arrival_rate_hz = 500.0;
  spec.seed = 11;
  const TenantMixResult result = run_tenant_mix(spec);
  ASSERT_TRUE(result.completed) << result.error;
  for (const TenantReport& t : result.tenants) {
    EXPECT_TRUE(t.all_delivered) << t.tenant;
    EXPECT_TRUE(t.payload_ok) << t.tenant;
  }
  EXPECT_GE(result.jain_fairness, 0.95);
}

TEST(MultiTenantContention, MatrixHasMixShapeAndNonNegativeEntries) {
  trace::Tracer tracer;
  TenantMixSpec spec = small_mix(9);
  spec.tracer = &tracer;
  const TenantMixResult result = run_tenant_mix(spec);
  ASSERT_TRUE(result.completed) << result.error;
  ASSERT_EQ(result.contention.size(), spec.n_tenants);
  for (const std::vector<double>& row : result.contention) {
    ASSERT_EQ(row.size(), spec.n_tenants);
    for (double cell : row) EXPECT_GE(cell, 0.0);
  }
  // Without a tracer the matrix stays empty.
  const TenantMixResult untraced = run_tenant_mix(small_mix(9));
  EXPECT_TRUE(untraced.contention.empty());
}

TEST(MultiTenantSizing, DisjointPlacementRejectsUndersizedFabric) {
  TenantMixSpec spec;
  spec.n_tenants = 4;
  spec.receivers_per_tenant = 3;
  spec.placement = TenantPlacementPolicy::kDisjoint;
  spec.n_hosts = 8;  // needs 16
  const TenantMixResult result = run_tenant_mix(spec);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.error.find("disjoint placement"), std::string::npos) << result.error;
}

// Regression for the cross-group validate() extension: two concurrently
// registered groups may not share a multicast data endpoint (every
// receiver binds the group port and joins the group address, so the
// collision silently merges two tenants' DATA streams).
TEST(GroupDirectory, RejectsDataEndpointCollisions) {
  auto membership = [](std::uint32_t group_addr, std::uint16_t group_port,
                       std::uint16_t control_base) {
    rmcast::GroupMembership m;
    m.group = {net::Ipv4Addr(group_addr), group_port};
    m.sender_control = {net::Ipv4Addr(0x0A00'0001u), control_base};
    m.receiver_control = {{net::Ipv4Addr(0x0A00'0002u), control_base},
                          {net::Ipv4Addr(0x0A00'0003u), control_base}};
    return m;
  };

  rmcast::GroupDirectory directory;
  EXPECT_EQ(directory.add(1, membership(0xEF00'0001u, 5000, 5001)), "");
  // Same data endpoint: rejected, not registered.
  const std::string collision = directory.add(2, membership(0xEF00'0001u, 5000, 6001));
  EXPECT_NE(collision.find("collides"), std::string::npos) << collision;
  EXPECT_EQ(directory.size(), 1u);
  // Same address on a different port, and a different address on the same
  // port, are both distinct endpoints: fine.
  EXPECT_EQ(directory.add(3, membership(0xEF00'0001u, 5003, 6001)), "");
  EXPECT_EQ(directory.add(4, membership(0xEF00'0002u, 5000, 7001)), "");
  // Unregistering frees the endpoint for reuse.
  directory.remove(1);
  EXPECT_EQ(directory.add(5, membership(0xEF00'0001u, 5000, 8001)), "");
  EXPECT_EQ(directory.size(), 3u);
}

}  // namespace
}  // namespace rmc::harness
