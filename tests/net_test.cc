// Unit tests for the L2 models: addresses, frames, links, the learning
// switch, and the CSMA/CD bus.
#include <gtest/gtest.h>

#include <vector>

#include "net/ethernet_switch.h"
#include "net/frame.h"
#include "net/ipv4.h"
#include "net/mac.h"
#include "net/shared_bus.h"
#include "net/tx_port.h"
#include "sim/simulator.h"

namespace rmc::net {
namespace {

Frame test_frame(MacAddr dst, MacAddr src, std::size_t payload_bytes) {
  return make_frame(dst, src, Buffer(payload_bytes, 0xAA));
}

TEST(Ipv4, ParseAndFormat) {
  Ipv4Addr a = Ipv4Addr::parse("10.0.0.31");
  EXPECT_EQ(a.str(), "10.0.0.31");
  EXPECT_EQ(a.bits(), 0x0A00001Fu);
  EXPECT_TRUE(Ipv4Addr::parse("256.1.1.1").is_unspecified());
  EXPECT_TRUE(Ipv4Addr::parse("1.2.3").is_unspecified());
  EXPECT_TRUE(Ipv4Addr::parse("1.2.3.4.5").is_unspecified());
  EXPECT_TRUE(Ipv4Addr::parse("junk").is_unspecified());
}

TEST(Ipv4, MulticastRange) {
  EXPECT_TRUE(Ipv4Addr(224, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Ipv4Addr(239, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Addr(223, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Ipv4Addr(240, 0, 0, 0).is_multicast());
  EXPECT_FALSE(Ipv4Addr(10, 0, 0, 1).is_multicast());
}

TEST(Ipv4, EndpointFormatting) {
  Endpoint e{Ipv4Addr(10, 0, 0, 1), 5001};
  EXPECT_EQ(e.str(), "10.0.0.1:5001");
  EXPECT_EQ(e, (Endpoint{Ipv4Addr(10, 0, 0, 1), 5001}));
  EXPECT_NE(e, (Endpoint{Ipv4Addr(10, 0, 0, 1), 5002}));
}

TEST(Mac, GroupBitAndBroadcast) {
  EXPECT_TRUE(MacAddr::broadcast().is_group());
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddr::host(3).is_group());
  EXPECT_TRUE(MacAddr::from_multicast_group(Ipv4Addr(239, 0, 0, 1)).is_group());
}

TEST(Mac, Rfc1112MulticastMapping) {
  // 239.0.0.1 -> 01:00:5e:00:00:01 (low 23 bits).
  MacAddr m = MacAddr::from_multicast_group(Ipv4Addr(239, 0, 0, 1));
  EXPECT_EQ(m.str(), "01:00:5e:00:00:01");
  // 224.128.0.1 and 224.0.0.1 collide in the low 23 bits, as per the RFC.
  EXPECT_EQ(MacAddr::from_multicast_group(Ipv4Addr(224, 128, 0, 1)),
            MacAddr::from_multicast_group(Ipv4Addr(224, 0, 0, 1)));
}

TEST(PayloadRef, SharingBumpsRefcountNotBytes) {
  Buffer bytes = {1, 2, 3, 4};
  PayloadRef a = PayloadRef::copy_of(BytesView(bytes.data(), bytes.size()));
  EXPECT_TRUE(a.unique());
  PayloadRef b = a;
  EXPECT_EQ(a.ref_count(), 2u);
  EXPECT_EQ(a.data(), b.data());  // same block, no copy
  b.reset();
  EXPECT_TRUE(a.unique());
  EXPECT_EQ(a.view()[2], 3);
}

TEST(PayloadRef, CopyOnWriteIsolatesMutation) {
  const FrameArena::Stats& stats = FrameArena::instance().stats();
  const std::uint64_t cows_before = stats.copies_on_write;
  Buffer bytes(100, 0x55);
  PayloadRef original = PayloadRef::copy_of(BytesView(bytes.data(), bytes.size()));
  PayloadRef tampered = original;
  tampered.mutable_data()[10] ^= 0xFF;
  EXPECT_EQ(stats.copies_on_write, cows_before + 1);
  EXPECT_NE(original.data(), tampered.data());
  EXPECT_EQ(original.view()[10], 0x55);
  EXPECT_EQ(tampered.view()[10], 0x55 ^ 0xFF);
  // A unique ref mutates in place — no second copy.
  tampered.mutable_data()[11] ^= 0xFF;
  EXPECT_EQ(stats.copies_on_write, cows_before + 1);
}

TEST(FrameArena, RecyclesStandardBlocks) {
  FrameArena& arena = FrameArena::instance();
  // Warm the free list, then churn: no fresh allocations in steady state.
  PayloadRef::allocate(1000).reset();
  const std::uint64_t created = arena.stats().blocks_created;
  const std::uint64_t reused_before = arena.stats().blocks_reused;
  for (int i = 0; i < 100; ++i) {
    PayloadRef ref = PayloadRef::allocate(1500);
    ref.mutable_data()[0] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(arena.stats().blocks_created, created);
  EXPECT_GE(arena.stats().blocks_reused, reused_before + 100);
}

TEST(FrameArena, OversizePayloadsWork) {
  const std::uint64_t oversize_before = FrameArena::instance().stats().oversize_blocks;
  Buffer big(4000, 0xCD);
  PayloadRef ref = PayloadRef::copy_of(BytesView(big.data(), big.size()));
  EXPECT_EQ(ref.size(), 4000u);
  EXPECT_EQ(ref.view()[3999], 0xCD);
  EXPECT_EQ(FrameArena::instance().stats().oversize_blocks, oversize_before + 1);
}

TEST(Frame, SizeAccounting) {
  Frame f = test_frame(MacAddr::host(1), MacAddr::host(2), 1000);
  EXPECT_EQ(f.frame_bytes(), 1000u + 18u);
  EXPECT_EQ(f.wire_bytes(), 1000u + 18u + 20u);
}

TEST(Frame, PadsToMinimum) {
  Frame f = test_frame(MacAddr::host(1), MacAddr::host(2), 10);
  EXPECT_EQ(f.frame_bytes(), kEthMinFrameBytes);
  EXPECT_EQ(f.wire_bytes(), kEthMinFrameBytes + kEthPreambleAndIfgBytes);
}

TEST(TxPort, SerializationTiming) {
  sim::Simulator sim;
  LinkParams params;
  params.rate_bps = 100e6;
  params.propagation = sim::nanoseconds(500);
  TxPort port(sim, params);
  std::vector<sim::Time> arrivals;
  port.connect([&](const Frame&) { arrivals.push_back(sim.now()); });

  // 1230-byte payload -> 1268 wire bytes -> 101.44 us serialization.
  port.send(test_frame(MacAddr::host(1), MacAddr::host(0), 1230));
  port.send(test_frame(MacAddr::host(1), MacAddr::host(0), 1230));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], sim::nanoseconds(101440 + 500));
  // Second frame queues behind the first.
  EXPECT_EQ(arrivals[1], sim::nanoseconds(2 * 101440 + 500));
  EXPECT_EQ(port.stats().frames_sent, 2u);
  EXPECT_EQ(port.stats().busy_time, sim::nanoseconds(2 * 101440));
}

TEST(TxPort, DropsWhenQueueFull) {
  sim::Simulator sim;
  LinkParams params;
  params.queue_frames = 2;
  TxPort port(sim, params);
  int delivered = 0;
  port.connect([&](const Frame&) { ++delivered; });
  // One transmitting + two queued + one dropped.
  for (int i = 0; i < 4; ++i) {
    port.send(test_frame(MacAddr::host(1), MacAddr::host(0), 100));
  }
  EXPECT_EQ(port.stats().queue_drops, 1u);
  sim.run();
  EXPECT_EQ(delivered, 3);
}

TEST(TxPort, FrameErrorsConsumeWireTimeButDropFrame) {
  sim::Simulator sim;
  Rng rng(1);
  LinkParams params;
  params.frame_error_rate = 1.0;  // every frame corrupted
  TxPort port(sim, params, &rng);
  int delivered = 0;
  port.connect([&](const Frame&) { ++delivered; });
  port.send(test_frame(MacAddr::host(1), MacAddr::host(0), 500));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(port.stats().error_drops, 1u);
  EXPECT_GT(port.stats().busy_time, 0);
}

TEST(TxPort, DequeueHookReportsWireBytes) {
  sim::Simulator sim;
  TxPort port(sim, LinkParams{});
  port.connect([](const Frame&) {});
  std::size_t reported = 0;
  port.set_dequeue_hook([&](std::size_t bytes) { reported += bytes; });
  Frame f = test_frame(MacAddr::host(1), MacAddr::host(0), 1000);
  const std::size_t wire = f.wire_bytes();
  port.send(f);
  port.send(test_frame(MacAddr::host(1), MacAddr::host(0), 1000));
  EXPECT_EQ(port.queued_wire_bytes(), wire);  // second frame queued
  sim.run();
  EXPECT_EQ(reported, 2 * wire);
  EXPECT_EQ(port.queued_wire_bytes(), 0u);
}

TEST(TxPort, TamperFaultFlipsOneByteInPrivateCopy) {
  sim::Simulator sim;
  Rng rng(5);
  LinkParams params;
  params.faults.tamper_rate = 1.0;  // every delivered frame tampered
  TxPort port(sim, params, &rng);
  std::vector<Frame> delivered;
  port.connect([&](const Frame& f) { delivered.push_back(f); });

  Frame frame = test_frame(MacAddr::host(1), MacAddr::host(0), 200);
  PayloadRef pristine = frame.payload;  // a flood peer's view of the block
  port.send(frame);
  sim.run();

  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(port.stats().tampered_frames, 1u);
  // The delivered copy differs from the shared original in exactly one byte.
  ASSERT_EQ(delivered[0].payload.size(), pristine.size());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    if (delivered[0].payload.view()[i] != pristine.view()[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
  // And the original block was never mutated: every byte still 0xAA.
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    ASSERT_EQ(pristine.view()[i], 0xAA);
  }
}

class SwitchTest : public ::testing::Test {
 protected:
  SwitchTest() : sw_(sim_, 4, SwitchParams{}) {
    for (std::size_t p = 0; p < 4; ++p) {
      ingress_[p] = sw_.attach(p, [this, p](const Frame& f) {
        received_[p].push_back(f);
      });
    }
  }

  sim::Simulator sim_;
  EthernetSwitch sw_;
  FrameSink ingress_[4];
  std::vector<Frame> received_[4];
};

TEST_F(SwitchTest, FloodsUnknownUnicast) {
  ingress_[0](test_frame(MacAddr::host(9), MacAddr::host(0), 100));
  sim_.run();
  EXPECT_TRUE(received_[0].empty());  // never back out the ingress port
  EXPECT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(received_[2].size(), 1u);
  EXPECT_EQ(received_[3].size(), 1u);
  EXPECT_EQ(sw_.stats().frames_flooded, 1u);
}

TEST_F(SwitchTest, LearnsAndForwardsPointToPoint) {
  // Teach the switch where host 2 lives.
  ingress_[2](test_frame(MacAddr::broadcast(), MacAddr::host(2), 100));
  sim_.run();
  received_[0].clear();
  received_[1].clear();
  received_[3].clear();

  ingress_[0](test_frame(MacAddr::host(2), MacAddr::host(0), 100));
  sim_.run();
  EXPECT_EQ(received_[2].size(), 1u);
  EXPECT_TRUE(received_[1].empty());
  EXPECT_TRUE(received_[3].empty());
  EXPECT_EQ(sw_.stats().frames_forwarded, 1u);
}

TEST_F(SwitchTest, FiltersFramesForTheIngressSegment) {
  ingress_[1](test_frame(MacAddr::broadcast(), MacAddr::host(5), 100));
  sim_.run();
  for (auto& r : received_) r.clear();
  // Host 5 was learned on port 1; a frame to host 5 arriving on port 1
  // must be dropped (destination is on the source segment).
  ingress_[1](test_frame(MacAddr::host(5), MacAddr::host(6), 100));
  sim_.run();
  for (const auto& r : received_) EXPECT_TRUE(r.empty());
}

TEST_F(SwitchTest, RelearnsMovedStation) {
  // Host 5 first appears on port 1, then moves to port 3 (cable swap).
  ingress_[1](test_frame(MacAddr::broadcast(), MacAddr::host(5), 100));
  sim_.run();
  ingress_[3](test_frame(MacAddr::broadcast(), MacAddr::host(5), 100));
  sim_.run();
  for (auto& r : received_) r.clear();

  ingress_[0](test_frame(MacAddr::host(5), MacAddr::host(0), 100));
  sim_.run();
  EXPECT_TRUE(received_[1].empty());
  EXPECT_EQ(received_[3].size(), 1u);
}

TEST_F(SwitchTest, MulticastAlwaysFloods) {
  MacAddr group = MacAddr::from_multicast_group(Ipv4Addr(239, 0, 0, 1));
  ingress_[3](test_frame(group, MacAddr::host(3), 100));
  sim_.run();
  EXPECT_EQ(received_[0].size(), 1u);
  EXPECT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(received_[2].size(), 1u);
  EXPECT_TRUE(received_[3].empty());
}

TEST_F(SwitchTest, FloodingSharesOnePayloadBlock) {
  Frame frame = test_frame(MacAddr::broadcast(), MacAddr::host(0), 700);
  const std::uint8_t* block = frame.payload.data();
  ingress_[0](frame);
  sim_.run();
  // Every egress copy points at the same arena block — flooding never
  // duplicated the payload bytes.
  for (std::size_t p = 1; p < 4; ++p) {
    ASSERT_EQ(received_[p].size(), 1u);
    EXPECT_EQ(received_[p][0].payload.data(), block);
  }
  EXPECT_EQ(frame.payload.ref_count(), 4u);  // ours + three receive logs
}

TEST_F(SwitchTest, ForwardingLatencyApplied) {
  ingress_[0](test_frame(MacAddr::broadcast(), MacAddr::host(0), 1000));
  sim_.run();
  // Forwarding latency + serialization + propagation.
  SwitchParams defaults;
  sim::Time expected = defaults.forwarding_latency +
                       sim::transmission_time(1000 + 38, defaults.port.rate_bps) +
                       defaults.port.propagation;
  EXPECT_EQ(sim_.now(), expected);
}

class SnoopingSwitchTest : public ::testing::Test {
 protected:
  SnoopingSwitchTest() : sw_(sim_, 4, make_params()) {
    for (std::size_t p = 0; p < 4; ++p) {
      ingress_[p] = sw_.attach(p, [this, p](const Frame& f) {
        received_[p].push_back(f);
      });
    }
  }

  static SwitchParams make_params() {
    SwitchParams params;
    params.multicast_snooping = true;
    return params;
  }

  sim::Simulator sim_;
  EthernetSwitch sw_;
  FrameSink ingress_[4];
  std::vector<Frame> received_[4];
};

TEST_F(SnoopingSwitchTest, RegisteredGroupsReachMembersOnly) {
  MacAddr group = MacAddr::from_multicast_group(Ipv4Addr(239, 0, 0, 1));
  sw_.register_group_port(group, 1);
  sw_.register_group_port(group, 3);
  ingress_[0](test_frame(group, MacAddr::host(0), 100));
  sim_.run();
  EXPECT_TRUE(received_[0].empty());
  EXPECT_EQ(received_[1].size(), 1u);
  EXPECT_TRUE(received_[2].empty());  // not a member: filtered at the switch
  EXPECT_EQ(received_[3].size(), 1u);
  EXPECT_EQ(sw_.stats().frames_snoop_forwarded, 1u);
  EXPECT_EQ(sw_.stats().frames_flooded, 0u);
}

TEST_F(SnoopingSwitchTest, UnregisteredGroupsStillFlood) {
  MacAddr group = MacAddr::from_multicast_group(Ipv4Addr(239, 9, 9, 9));
  ingress_[0](test_frame(group, MacAddr::host(0), 100));
  sim_.run();
  EXPECT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(received_[2].size(), 1u);
  EXPECT_EQ(sw_.stats().frames_flooded, 1u);
}

TEST_F(SnoopingSwitchTest, BroadcastIgnoresSnooping) {
  MacAddr group = MacAddr::from_multicast_group(Ipv4Addr(239, 0, 0, 1));
  sw_.register_group_port(group, 1);
  ingress_[0](test_frame(MacAddr::broadcast(), MacAddr::host(0), 100));
  sim_.run();
  EXPECT_EQ(received_[1].size(), 1u);
  EXPECT_EQ(received_[2].size(), 1u);
  EXPECT_EQ(received_[3].size(), 1u);
}

TEST_F(SnoopingSwitchTest, RegistrationIsReferenceCounted) {
  MacAddr group = MacAddr::from_multicast_group(Ipv4Addr(239, 0, 0, 1));
  sw_.register_group_port(group, 1);
  sw_.register_group_port(group, 1);  // a second socket on the same port
  sw_.unregister_group_port(group, 1);
  ingress_[0](test_frame(group, MacAddr::host(0), 100));
  sim_.run();
  EXPECT_EQ(received_[1].size(), 1u);  // still registered once
  sw_.unregister_group_port(group, 1);
  ingress_[0](test_frame(group, MacAddr::host(0), 100));
  sim_.run();
  // No members left: the group is unknown again and floods.
  EXPECT_EQ(received_[2].size(), 1u);
}

TEST(SharedBus, SingleStationDeliversToAllOthers) {
  sim::Simulator sim;
  Rng rng(1);
  SharedBus bus(sim, BusParams{}, rng);
  int received[3] = {0, 0, 0};
  for (int s = 0; s < 3; ++s) {
    bus.add_station([&received, s](const Frame&) { ++received[s]; });
  }
  bus.send(0, test_frame(MacAddr::broadcast(), MacAddr::host(0), 500));
  sim.run();
  EXPECT_EQ(received[0], 0);  // no self-delivery
  EXPECT_EQ(received[1], 1);
  EXPECT_EQ(received[2], 1);
  EXPECT_EQ(bus.stats().frames_delivered, 1u);
  EXPECT_EQ(bus.stats().collisions, 0u);
}

TEST(SharedBus, SimultaneousStartsCollideThenRecover) {
  sim::Simulator sim;
  Rng rng(7);
  SharedBus bus(sim, BusParams{}, rng);
  int received[2] = {0, 0};
  for (int s = 0; s < 2; ++s) {
    bus.add_station([&received, s](const Frame&) { ++received[s]; });
  }
  // Both stations transmit at t=0: neither senses the other -> collision,
  // backoff, then both succeed.
  bus.send(0, test_frame(MacAddr::broadcast(), MacAddr::host(0), 500));
  bus.send(1, test_frame(MacAddr::broadcast(), MacAddr::host(1), 500));
  sim.run();
  EXPECT_GE(bus.stats().collisions, 1u);
  EXPECT_EQ(bus.stats().frames_delivered, 2u);
  EXPECT_EQ(received[0], 1);
  EXPECT_EQ(received[1], 1);
}

TEST(SharedBus, CarrierSenseDefersInsteadOfColliding) {
  sim::Simulator sim;
  Rng rng(7);
  BusParams params;
  SharedBus bus(sim, params, rng);
  int received = 0;
  bus.add_station([](const Frame&) {});
  bus.add_station([&](const Frame&) { ++received; });
  bus.send(0, test_frame(MacAddr::broadcast(), MacAddr::host(0), 1000));
  // Second transmission starts well after the first is sensed: no collision.
  sim.schedule_at(params.propagation + sim::microseconds(10), [&] {
    bus.send(0, test_frame(MacAddr::broadcast(), MacAddr::host(0), 1000));
  });
  sim.run();
  EXPECT_EQ(bus.stats().collisions, 0u);
  EXPECT_EQ(received, 2);
}

TEST(SharedBus, ManyStationsAllEventuallyDeliver) {
  sim::Simulator sim;
  Rng rng(3);
  SharedBus bus(sim, BusParams{}, rng);
  const int n = 8;
  std::vector<int> received(n, 0);
  for (int s = 0; s < n; ++s) {
    bus.add_station([&received, s](const Frame&) { ++received[s]; });
  }
  for (int s = 0; s < n; ++s) {
    bus.send(static_cast<std::size_t>(s),
             test_frame(MacAddr::broadcast(), MacAddr::host(static_cast<std::uint32_t>(s)),
                        800));
  }
  sim.run();
  EXPECT_EQ(bus.stats().frames_delivered, static_cast<std::uint64_t>(n));
  for (int s = 0; s < n; ++s) {
    EXPECT_EQ(received[s], n - 1) << "station " << s;
  }
}

TEST(SharedBus, BacklogAccountingAndHook) {
  sim::Simulator sim;
  Rng rng(1);
  SharedBus bus(sim, BusParams{}, rng);
  bus.add_station([](const Frame&) {});
  bus.add_station([](const Frame&) {});
  std::size_t drained = 0;
  bus.set_dequeue_hook(0, [&](std::size_t bytes) { drained += bytes; });
  Frame f = test_frame(MacAddr::broadcast(), MacAddr::host(0), 500);
  const std::size_t wire = f.wire_bytes();
  bus.send(0, f);
  bus.send(0, test_frame(MacAddr::broadcast(), MacAddr::host(0), 500));
  EXPECT_EQ(bus.station_backlog_bytes(0), 2 * wire);
  sim.run();
  EXPECT_EQ(bus.station_backlog_bytes(0), 0u);
  EXPECT_EQ(drained, 2 * wire);
}

}  // namespace
}  // namespace rmc::net
