// Acceptance tests for the observability layer: a real multicast run with
// a metrics registry attached must produce protocol histograms whose
// totals agree with the existing SenderStats/ReceiverStats counters,
// network-tier gauges for the switch port queues, and a JSON snapshot
// with the documented schema.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>

#include "common/metrics.h"
#include "harness/experiment.h"

namespace rmc::harness {
namespace {

MulticastRunSpec small_ack_spec() {
  MulticastRunSpec spec;
  spec.n_receivers = 6;
  spec.message_bytes = 120'000;
  spec.protocol.kind = rmcast::ProtocolKind::kAck;
  spec.protocol.packet_size = 8000;
  spec.protocol.window_size = 8;
  return spec;
}

TEST(Observability, HistogramTotalsMatchProtocolCounters) {
  metrics::Registry registry;
  MulticastRunSpec spec = small_ack_spec();
  spec.metrics = &registry;
  RunResult r = run_multicast(spec);
  ASSERT_TRUE(r.completed) << r.error;

  // Delivery latency: one sample per delivered message, so the histogram
  // count must equal the receivers' delivered total exactly.
  std::uint64_t delivered = 0;
  for (const auto& rs : r.receivers) delivered += rs.messages_delivered;
  EXPECT_EQ(delivered, spec.n_receivers);
  const metrics::LatencyHistogram* latency =
      registry.find_histogram("receiver.delivery_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), delivered);
  EXPECT_GT(latency->min_us(), 0.0);
  EXPECT_LE(latency->p50_us(), latency->p99_us());
  // Delivery happens before the sender learns of completion.
  EXPECT_LE(latency->max_us(), r.seconds * 1e6 + 1.0);

  // ACK RTT: sampled only for ACKs that advance the window, so the count
  // is positive but never exceeds the ACKs the sender received.
  const metrics::LatencyHistogram* ack_rtt =
      registry.find_histogram("sender.ack_rtt_us");
  ASSERT_NE(ack_rtt, nullptr);
  EXPECT_GT(ack_rtt->count(), 0u);
  EXPECT_LE(ack_rtt->count(), r.sender.acks_received);
  EXPECT_GT(ack_rtt->min_us(), 0.0);

  // Mirrored counters agree with the stats structs.
  ASSERT_NE(registry.find_counter("sender.data_packets_sent"), nullptr);
  EXPECT_EQ(registry.find_counter("sender.data_packets_sent")->value(),
            r.sender.data_packets_sent);
  EXPECT_EQ(registry.find_counter("sender.acks_received")->value(),
            r.sender.acks_received);
  EXPECT_EQ(registry.find_counter("receiver.messages_delivered")->value(), delivered);
  EXPECT_EQ(registry.find_counter("receiver.acks_sent")->value(),
            r.total_acks_sent());
  EXPECT_EQ(registry.find_counter("harness.runs")->value(), 1u);
  EXPECT_EQ(registry.find_counter("harness.runs_completed")->value(), 1u);
  const metrics::LatencyHistogram* run_time =
      registry.find_histogram("harness.run_time_us");
  ASSERT_NE(run_time, nullptr);
  EXPECT_EQ(run_time->count(), 1u);
}

TEST(Observability, SwitchPortQueueHighWaterMarksPresent) {
  metrics::Registry registry;
  MulticastRunSpec spec = small_ack_spec();
  spec.metrics = &registry;
  RunResult r = run_multicast(spec);
  ASSERT_TRUE(r.completed) << r.error;

  // Default wiring is the paper's two-switch testbed: both switches must
  // publish per-port queue high-water marks, and at least one port saw
  // traffic (the multicast data itself).
  std::size_t hwm_gauges = 0;
  double max_hwm = 0.0;
  for (const auto& [name, gauge] : registry.gauges()) {
    if (name.rfind("net.switch", 0) == 0 &&
        name.find(".queue_hwm_frames") != std::string::npos) {
      ++hwm_gauges;
      max_hwm = std::max(max_hwm, gauge.value());
    }
  }
  EXPECT_GT(hwm_gauges, 0u);
  EXPECT_GE(max_hwm, 1.0);
  EXPECT_NE(registry.find_counter("net.switch0.frames_flooded"), nullptr);
  ASSERT_NE(registry.find_gauge("net.sender_nic.queue_hwm_frames"), nullptr);
  EXPECT_GE(registry.find_gauge("net.sender_nic.queue_hwm_frames")->value(), 1.0);
  EXPECT_GT(registry.find_gauge("net.sender_nic.busy_seconds")->value(), 0.0);
}

TEST(Observability, RegistryAccumulatesAcrossRuns) {
  metrics::Registry registry;
  MulticastRunSpec spec = small_ack_spec();
  spec.metrics = &registry;
  RunResult first = run_multicast(spec);
  ASSERT_TRUE(first.completed) << first.error;
  const std::uint64_t after_one =
      registry.find_counter("sender.data_packets_sent")->value();

  spec.seed = 2;
  RunResult second = run_multicast(spec);
  ASSERT_TRUE(second.completed) << second.error;
  EXPECT_EQ(registry.find_counter("sender.data_packets_sent")->value(),
            after_one + second.sender.data_packets_sent);
  EXPECT_EQ(registry.find_counter("harness.runs")->value(), 2u);
  EXPECT_EQ(registry.find_histogram("receiver.delivery_latency_us")->count(),
            2 * spec.n_receivers);
}

TEST(Observability, NakRunPublishesNakCounters) {
  metrics::Registry registry;
  MulticastRunSpec spec;
  spec.n_receivers = 4;
  spec.message_bytes = 200'000;
  spec.protocol.kind = rmcast::ProtocolKind::kNakPolling;
  spec.protocol.packet_size = 4000;
  spec.protocol.window_size = 10;
  spec.protocol.poll_interval = 8;
  spec.cluster.link.frame_error_rate = 0.03;
  spec.seed = 5;
  spec.metrics = &registry;
  RunResult r = run_multicast(spec);
  ASSERT_TRUE(r.completed) << r.error;

  EXPECT_EQ(registry.find_counter("sender.naks_received")->value(),
            r.sender.naks_received);
  EXPECT_EQ(registry.find_counter("sender.retransmissions")->value(),
            r.sender.retransmissions);
  EXPECT_GT(r.sender.retransmissions, 0u);
  EXPECT_EQ(registry.find_counter("receiver.naks_sent")->value(),
            r.total_naks_sent());
  // Loss drops frames at the link tier, and that shows up in the metrics.
  EXPECT_EQ(registry.find_counter("net.link_drops")->value(), r.link_drops);
  EXPECT_GT(r.link_drops, 0u);
}

TEST(Observability, EcRunPublishesFecCounters) {
  metrics::Registry registry;
  MulticastRunSpec spec;
  spec.n_receivers = 4;
  spec.message_bytes = 400'000;
  spec.protocol.kind = rmcast::ProtocolKind::kEcRs;
  spec.protocol.packet_size = 4000;
  spec.protocol.fec.k = 16;
  spec.protocol.fec.m = 4;
  spec.protocol.window_size = 24;
  spec.protocol.selective_repeat = true;
  spec.protocol.receiver_driven_timeouts = true;
  spec.cluster.link.frame_error_rate = 0.01;
  spec.seed = 5;
  spec.metrics = &registry;
  RunResult r = run_multicast(spec);
  ASSERT_TRUE(r.completed) << r.error;

  EXPECT_EQ(registry.find_counter("sender.parity_packets_sent")->value(),
            r.sender.parity_packets_sent);
  EXPECT_GT(r.sender.parity_packets_sent, 0u);
  std::uint64_t parity_rx = 0, decodes = 0, recovered = 0, gnaks = 0;
  for (const auto& rs : r.receivers) {
    parity_rx += rs.parity_packets_received;
    decodes += rs.fec_decodes;
    recovered += rs.fec_blocks_recovered;
    gnaks += rs.group_naks_sent;
  }
  EXPECT_EQ(registry.find_counter("receiver.parity_packets_received")->value(),
            parity_rx);
  EXPECT_EQ(registry.find_counter("receiver.fec_decodes")->value(), decodes);
  EXPECT_EQ(registry.find_counter("receiver.fec_blocks_recovered")->value(),
            recovered);
  EXPECT_EQ(registry.find_counter("receiver.group_naks_sent")->value(), gnaks);
  EXPECT_EQ(registry.find_counter("sender.group_naks_received")->value(),
            r.sender.group_naks_received);
  // At 1% loss the parity must actually be earning its keep.
  EXPECT_GT(decodes, 0u);
  EXPECT_GE(recovered, decodes);
}

TEST(Observability, JsonSnapshotHasDocumentedSchema) {
  metrics::Registry registry;
  MulticastRunSpec spec = small_ack_spec();
  spec.metrics = &registry;
  RunResult r = run_multicast(spec);
  ASSERT_TRUE(r.completed) << r.error;

  const std::string json = registry.to_json();
  for (const char* key :
       {"\"counters\"", "\"gauges\"", "\"histograms\"",
        "\"receiver.delivery_latency_us\"", "\"sender.ack_rtt_us\"",
        "\"sender.data_packets_sent\"", "\"p50_us\"", "\"p95_us\"", "\"p99_us\"",
        "\"count\"", "\"buckets\"", "queue_hwm_frames"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Balanced braces/brackets — cheap structural sanity for the snapshot
  // (full parse validation lives in bench/smoke.sh).
  std::ptrdiff_t braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Observability, WindowStallsCountedWhenWindowIsTight) {
  metrics::Registry registry;
  MulticastRunSpec spec;
  spec.n_receivers = 4;
  spec.message_bytes = 400'000;
  spec.protocol.kind = rmcast::ProtocolKind::kAck;
  spec.protocol.packet_size = 4000;
  spec.protocol.window_size = 2;  // 100 packets through a 2-packet window
  spec.metrics = &registry;
  RunResult r = run_multicast(spec);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_GT(r.sender.window_stalls, 0u);
  EXPECT_EQ(registry.find_counter("sender.window_stalls")->value(),
            r.sender.window_stalls);
}

TEST(Observability, SnapshotMetaBlockPinsRunProvenance) {
  metrics::Registry registry;
  MulticastRunSpec spec = small_ack_spec();
  spec.seed = 9;
  spec.metrics = &registry;
  ASSERT_TRUE(run_multicast(spec).completed);

  // run_multicast stamps the protocol and seed; bench binaries add binary
  // name, jobs and git describe on top via bench_util.
  const std::string* protocol = registry.find_meta("protocol");
  ASSERT_NE(protocol, nullptr);
  EXPECT_EQ(*protocol, "ACK-based");
  const std::string* seed = registry.find_meta("seed");
  ASSERT_NE(seed, nullptr);
  EXPECT_EQ(*seed, "9");

  // The snapshot leads with the meta block, ahead of the counters.
  const std::string json = registry.to_json();
  const std::size_t meta_pos = json.find("\"meta\"");
  ASSERT_NE(meta_pos, std::string::npos);
  EXPECT_NE(json.find("\"protocol\": \"ACK-based\""), std::string::npos);
  EXPECT_LT(meta_pos, json.find("\"counters\""));

  // Merging a run of a different protocol collapses the differing key to
  // "mixed" while agreeing keys survive — so a sweep snapshot says exactly
  // what it mixes.
  metrics::Registry other;
  MulticastRunSpec nak = small_ack_spec();
  nak.protocol.kind = rmcast::ProtocolKind::kNakPolling;
  nak.protocol.poll_interval = 8;
  nak.seed = 9;
  nak.metrics = &other;
  ASSERT_TRUE(run_multicast(nak).completed);
  registry.merge(other);
  EXPECT_EQ(*registry.find_meta("protocol"), "mixed");
  EXPECT_EQ(*registry.find_meta("seed"), "9");

  // A registry with no metadata elides the block entirely.
  metrics::Registry empty;
  EXPECT_EQ(empty.to_json().find("\"meta\""), std::string::npos);
}

}  // namespace
}  // namespace rmc::harness
