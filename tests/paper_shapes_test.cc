// Paper-shape regression suite: the qualitative claims of each figure and
// table in the reproduced evaluation, asserted against the simulator. The
// goal is not absolute milliseconds (the harness is a calibrated model,
// not the authors' testbed) but the shapes: who wins, what degrades, and
// where the optima sit. If a calibration change breaks one of these, it
// broke the reproduction.
//
// Every run here is deterministic (fixed seed, no loss), so the
// assertions can use real margins without flakiness.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace rmc {
namespace {

double run_proto(rmcast::ProtocolKind kind, std::size_t n, std::uint64_t bytes,
                 std::size_t pkt, std::size_t window, std::size_t poll = 16,
                 std::size_t height = 6) {
  harness::MulticastRunSpec spec;
  spec.n_receivers = n;
  spec.message_bytes = bytes;
  spec.protocol.kind = kind;
  spec.protocol.packet_size = pkt;
  spec.protocol.window_size = window;
  spec.protocol.poll_interval = poll;
  spec.protocol.tree_height = height;
  harness::RunResult r = harness::run_multicast(spec);
  EXPECT_TRUE(r.completed) << r.error;
  return r.completed ? r.seconds : 1e9;
}

TEST(Figure8, TcpGrowsLinearlyMulticastStaysFlat) {
  const std::uint64_t bytes = 426'502;
  double tcp5 = harness::run_tcp_fanout(5, bytes, 1).seconds;
  double tcp20 = harness::run_tcp_fanout(20, bytes, 1).seconds;
  EXPECT_NEAR(tcp20 / tcp5, 4.0, 0.6);

  double mc1 = run_proto(rmcast::ProtocolKind::kAck, 1, bytes, 50'000, 5);
  double mc30 = run_proto(rmcast::ProtocolKind::kAck, 30, bytes, 50'000, 5);
  EXPECT_LT(mc30 / mc1, 1.35);  // paper: ~6% growth from 1 to 30

  // Multicast beats TCP from a handful of receivers on.
  double tcp30 = harness::run_tcp_fanout(30, bytes, 1).seconds;
  EXPECT_LT(mc30, tcp30 / 5.0);
}

TEST(Figure9, OverheadOrderingUdpThenNoCopyThenFull) {
  const std::uint64_t bytes = 32'768;
  double udp = harness::run_raw_udp(30, bytes, 50'000, 1).seconds;

  harness::MulticastRunSpec spec;
  spec.n_receivers = 30;
  spec.message_bytes = bytes;
  spec.protocol.kind = rmcast::ProtocolKind::kAck;
  spec.protocol.packet_size = 50'000;
  spec.protocol.window_size = 5;
  double full = harness::run_multicast(spec).seconds;
  spec.protocol.copy_user_data = false;
  double nocopy = harness::run_multicast(spec).seconds;

  EXPECT_LT(udp, nocopy);   // raw UDP has no handshake and no ACKs
  EXPECT_LT(nocopy, full);  // the user-space copy is real overhead
}

TEST(Figure10, WindowTwoSufficesAndBigPacketsWin) {
  const std::uint64_t bytes = 500'000;
  double w1 = run_proto(rmcast::ProtocolKind::kAck, 30, bytes, 6250, 1);
  double w2 = run_proto(rmcast::ProtocolKind::kAck, 30, bytes, 6250, 2);
  double w5 = run_proto(rmcast::ProtocolKind::kAck, 30, bytes, 6250, 5);
  EXPECT_GT(w1 / w2, 1.1);   // stop-and-wait visibly worse
  EXPECT_LT(w2 / w5, 1.15);  // beyond 2, little left to gain

  double small = run_proto(rmcast::ProtocolKind::kAck, 30, bytes, 1300, 2);
  double large = run_proto(rmcast::ProtocolKind::kAck, 30, bytes, 50'000, 2);
  EXPECT_GT(small / large, 3.0);  // packet size dominates the ACK protocol
}

TEST(Figure11, AckScalesForLargeMessagesNotSmall) {
  double small1 = run_proto(rmcast::ProtocolKind::kAck, 1, 256, 50'000, 5);
  double small30 = run_proto(rmcast::ProtocolKind::kAck, 30, 256, 50'000, 5);
  EXPECT_GT(small30 / small1, 2.0);  // ACK processing dominates small messages

  double large1 = run_proto(rmcast::ProtocolKind::kAck, 1, 500'000, 50'000, 5);
  double large30 = run_proto(rmcast::ProtocolKind::kAck, 30, 500'000, 50'000, 5);
  EXPECT_LT(large30 / large1, 1.5);  // data transmission dominates large ones
}

TEST(Figure12, PollIntervalOptimumSitsInTheInterior) {
  const std::uint64_t bytes = 500'000;
  double p1 = run_proto(rmcast::ProtocolKind::kNakPolling, 30, bytes, 5000, 20, 1);
  double p12 = run_proto(rmcast::ProtocolKind::kNakPolling, 30, bytes, 5000, 20, 12);
  double p16 = run_proto(rmcast::ProtocolKind::kNakPolling, 30, bytes, 5000, 20, 16);
  double p20 = run_proto(rmcast::ProtocolKind::kNakPolling, 30, bytes, 5000, 20, 20);
  double interior = std::min(p12, p16);
  EXPECT_GT(p1 / interior, 2.0);    // tiny interval degenerates to ACK behaviour
  EXPECT_GT(p20 / interior, 1.05);  // interval == window stalls the pipeline
}

TEST(Figure13, StarvedBuffersHurtNakPolling) {
  const std::uint64_t bytes = 500'000;
  // 50 KB of buffer at 8 KB packets is a window of 6; 400 KB gives 50.
  double starved = run_proto(rmcast::ProtocolKind::kNakPolling, 30, bytes, 8000, 6, 5);
  double ample = run_proto(rmcast::ProtocolKind::kNakPolling, 30, bytes, 8000, 50, 42);
  EXPECT_GT(starved / ample, 1.1);
}

TEST(Figure14, NakPollingScales) {
  double t1 = run_proto(rmcast::ProtocolKind::kNakPolling, 1, 500'000, 8000, 25, 21);
  double t30 = run_proto(rmcast::ProtocolKind::kNakPolling, 30, 500'000, 8000, 25, 21);
  EXPECT_LT(t30 / t1, 1.25);  // paper: ~5.5% average growth
}

TEST(Figure15, RingPacketSizeCurve) {
  const std::uint64_t bytes = 2 * 1024 * 1024;
  double tiny = run_proto(rmcast::ProtocolKind::kRing, 30, bytes, 1000, 35);
  double mid = run_proto(rmcast::ProtocolKind::kRing, 30, bytes, 8000, 35);
  double huge = run_proto(rmcast::ProtocolKind::kRing, 30, bytes, 50'000, 35);
  // The left side of the paper's U-curve (small packets pay per-packet
  // overhead) reproduces strongly; the right side (the paper's ~25%
  // large-packet penalty, an artefact of its exact sendto/copy interleave)
  // is muted in this model — see EXPERIMENTS.md — so assert only that
  // growing the packet beyond the sweet spot stops helping.
  EXPECT_GT(tiny / mid, 1.2);
  EXPECT_GE(huge, mid);
}

TEST(Figure17, RingScalesForLargeMessages) {
  double t1 = run_proto(rmcast::ProtocolKind::kRing, 1, 2 * 1024 * 1024, 8000, 50);
  double t30 = run_proto(rmcast::ProtocolKind::kRing, 30, 2 * 1024 * 1024, 8000, 50);
  EXPECT_LT(t30 / t1, 1.15);  // paper: under 1% — allow model slack
}

TEST(Figure18, FlatTreeBeatsItsDegenerateAckCase) {
  const std::uint64_t bytes = 500'000;
  double h1 = run_proto(rmcast::ProtocolKind::kFlatTree, 30, bytes, 8000, 20, 16, 1);
  double h6 = run_proto(rmcast::ProtocolKind::kFlatTree, 30, bytes, 8000, 20, 16, 6);
  double h15 = run_proto(rmcast::ProtocolKind::kFlatTree, 30, bytes, 8000, 20, 16, 15);
  // H=1 is the ACK protocol: implosion-bound at 8 KB, far behind any real
  // tree. (The paper's mild H=30 upturn for large messages is muted in
  // this model — its per-hop relay cost is smaller than the testbed's —
  // but the H=30 penalty for small messages and small windows reproduces;
  // see Figure19/Figure20 below and EXPERIMENTS.md.)
  EXPECT_GT(h1 / h6, 1.5);
  EXPECT_GT(h1 / h15, 1.5);
}

TEST(Figure19, TallTreesNeedWindowAndBeatAckGivenIt) {
  const std::uint64_t bytes = 500'000;
  double h30_w2 = run_proto(rmcast::ProtocolKind::kFlatTree, 30, bytes, 8000, 2, 16, 30);
  double h30_w12 = run_proto(rmcast::ProtocolKind::kFlatTree, 30, bytes, 8000, 12, 16, 30);
  EXPECT_GT(h30_w2 / h30_w12, 1.3);  // the chain RTT eats a small window

  double ack = run_proto(rmcast::ProtocolKind::kAck, 30, bytes, 8000, 20);
  double h6 = run_proto(rmcast::ProtocolKind::kFlatTree, 30, bytes, 8000, 20, 16, 6);
  EXPECT_GT(ack / h6, 1.5);  // with window, trees beat per-receiver ACKs
}

TEST(Figure20, SmallMessagesPunishTallTrees) {
  double h1 = run_proto(rmcast::ProtocolKind::kFlatTree, 30, 256, 8192, 20, 16, 1);
  double h30 = run_proto(rmcast::ProtocolKind::kFlatTree, 30, 256, 8192, 20, 16, 30);
  EXPECT_GT(h30 / h1, 1.5);  // per-hop user-level relay delay stacks up
}

TEST(Table3, LargeMessageProtocolOrdering) {
  const std::uint64_t bytes = 2 * 1024 * 1024;
  double nak = run_proto(rmcast::ProtocolKind::kNakPolling, 30, bytes, 8000, 50, 43);
  double ring = run_proto(rmcast::ProtocolKind::kRing, 30, bytes, 8000, 50);
  double tree6 = run_proto(rmcast::ProtocolKind::kFlatTree, 30, bytes, 8000, 20, 16, 6);
  double ack8k = run_proto(rmcast::ProtocolKind::kAck, 30, bytes, 8000, 20);

  // NAK >= ring >= tree >= ACK (at a common packet size) — the paper's
  // §5 ordering. NAK and ring are near-ties in both the paper and here.
  EXPECT_LE(nak, ring * 1.02);
  EXPECT_LT(ring, tree6);
  EXPECT_LT(tree6, ack8k);
}

TEST(Conclusions, SmallMessageProtocolsTie) {
  // §6: "For small messages, the ACK-based, NAK-based with polling, and
  // ring-based protocols have the same behavior and performance."
  double ack = run_proto(rmcast::ProtocolKind::kAck, 30, 1000, 50'000, 5);
  double nak = run_proto(rmcast::ProtocolKind::kNakPolling, 30, 1000, 50'000, 5, 4);
  double ring = run_proto(rmcast::ProtocolKind::kRing, 30, 1000, 50'000, 35);
  EXPECT_NEAR(nak / ack, 1.0, 0.05);
  EXPECT_NEAR(ring / ack, 1.0, 0.05);
}

}  // namespace
}  // namespace rmc
