// The sim-vs-real parity harness, end-to-end: one spec runs on the
// discrete-event simulator and on PosixRuntime over loopback, and the
// report must come back clean — identical backend-neutral metric shape,
// exact packet/delivery counters, goodput inside the declared band.
// Where the OS forbids sockets the posix stage records a skip and the
// report only reflects the sim run. The netem stage is requested via
// RMC_PARITY_NETEM=1 (the ci.sh posix-parity lane sets it); without
// tc/CAP_NET_ADMIN it records a skip, never a failure.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "harness/parity.h"

namespace rmc {
namespace {

// Port plan: this file owns 48400..48499 on loopback (run_parity's
// default block is 48300, the posix_loopback bench uses 48600/48700,
// posix_runtime_test 48800).
constexpr std::uint16_t kBasePort = 48400;

bool netem_requested_by_env() {
  const char* v = std::getenv("RMC_PARITY_NETEM");
  return v != nullptr && std::string(v) == "1";
}

std::string describe(const harness::ParityReport& report) {
  std::string out;
  for (const std::string& f : report.failures) out += "\n  failure: " + f;
  for (const std::string& k : report.missing_in_posix) out += "\n  missing on posix: " + k;
  for (const std::string& k : report.missing_in_sim) out += "\n  missing on sim: " + k;
  return out;
}

TEST(ParityTest, LoopbackRunMatchesSimulator) {
  harness::ParitySpec spec;
  spec.base_port = kBasePort;
  spec.message_bytes = 150'000;
  spec.try_netem = netem_requested_by_env();

  const harness::ParityReport report = harness::run_parity(spec);
  EXPECT_TRUE(report.sim.completed) << describe(report);
  if (!report.posix_ran) GTEST_SKIP() << "sockets unavailable; sim-only run";

  EXPECT_TRUE(report.ok) << describe(report);
  EXPECT_TRUE(report.posix.completed) << describe(report);
  EXPECT_TRUE(report.missing_in_posix.empty()) << describe(report);
  EXPECT_TRUE(report.missing_in_sim.empty()) << describe(report);
  EXPECT_EQ(report.sim.data_packets_sent, report.posix.data_packets_sent);
  EXPECT_EQ(report.posix.messages_delivered, spec.n_receivers);
  if (report.netem_requested && report.netem_applied) {
    EXPECT_TRUE(report.netem_delivered) << describe(report);
  }

  // The posix run must carry the backend tier the sim run cannot have.
  EXPECT_NE(report.posix.metrics.find_counter("posix.datagrams_sent"), nullptr);
  EXPECT_EQ(report.sim.metrics.find_counter("posix.datagrams_sent"), nullptr);

  // The report serializes to JSON (the bench artifact embeds it).
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos) << json;
}

TEST(ParityTest, InvalidConfigFailsClosed) {
  harness::ParitySpec spec;
  spec.base_port = kBasePort + 32;  // unused; the run never opens sockets
  spec.protocol.window_size = 0;    // invalid: validate() must reject it
  const harness::ParityReport report = harness::run_parity(spec);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures[0].find("invalid protocol config"), std::string::npos);
}

}  // namespace
}  // namespace rmc
