// End-to-end integration on the real-socket backend: the same protocol
// code that runs on the simulator transfers messages over genuine UDP
// multicast on the loopback interface. Skips cleanly where the
// environment forbids sockets.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rmcast/receiver.h"
#include "rmcast/sender.h"
#include "runtime/posix_runtime.h"

namespace rmc {
namespace {

Buffer pattern(std::size_t n) {
  Buffer b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 131 + 7);
  return b;
}

// One process, one event loop, N+1 protocol endpoints on loopback.
class LoopbackGroup {
 public:
  LoopbackGroup(std::size_t n_receivers, std::uint16_t base_port, std::uint8_t group_octet) {
    membership_.group = {net::Ipv4Addr(239, 77, 0, group_octet), base_port};
    membership_.sender_control = {net::Ipv4Addr(127, 0, 0, 1),
                                  static_cast<std::uint16_t>(base_port + 1)};
    for (std::size_t i = 0; i < n_receivers; ++i) {
      membership_.receiver_control.push_back(
          {net::Ipv4Addr(127, 0, 0, 1), static_cast<std::uint16_t>(base_port + 2 + i)});
    }
  }

  // Returns false if sockets are unavailable.
  bool open(rmcast::ProtocolConfig config) {
    rt::PosixSocketOptions sender_options;
    sender_options.bind_addr = net::Ipv4Addr(127, 0, 0, 1);
    sender_options.port = membership_.sender_control.port;
    sender_socket_ = runtime_.open_socket(sender_options);
    if (!sender_socket_) return false;
    sender_ = std::make_unique<rmcast::MulticastSender>(runtime_, *sender_socket_,
                                                        membership_, config);

    deliveries_.resize(membership_.n_receivers());
    for (std::size_t i = 0; i < membership_.n_receivers(); ++i) {
      rt::PosixSocketOptions data_options;
      data_options.port = membership_.group.port;
      data_options.reuse_addr = true;
      data_options.join_groups = {membership_.group.addr};
      auto data = runtime_.open_socket(data_options);
      if (!data) return false;

      rt::PosixSocketOptions control_options;
      control_options.bind_addr = net::Ipv4Addr(127, 0, 0, 1);
      control_options.port = membership_.receiver_control[i].port;
      auto control = runtime_.open_socket(control_options);
      if (!control) return false;

      receivers_.push_back(std::make_unique<rmcast::MulticastReceiver>(
          runtime_, *data, *control, membership_, i, config));
      receivers_[i]->set_message_handler(
          [this, i](const Buffer& message, std::uint32_t) {
            deliveries_[i].push_back(message);
          });
      data_sockets_.push_back(std::move(data));
      control_sockets_.push_back(std::move(control));
    }
    return true;
  }

  bool transfer(const Buffer& message, sim::Time wall_limit = sim::seconds(10.0)) {
    bool done = false;
    sender_->send(BytesView(message.data(), message.size()),
                  [&](const rmcast::SendOutcome&) {
                    done = true;
                    runtime_.stop();
                  });
    runtime_.run_for(wall_limit);
    return done;
  }

  const std::vector<Buffer>& deliveries(std::size_t i) const { return deliveries_[i]; }
  std::size_t n_receivers() const { return membership_.n_receivers(); }
  rmcast::MulticastSender& sender() { return *sender_; }

 private:
  rt::PosixRuntime runtime_;
  rmcast::GroupMembership membership_;
  std::unique_ptr<rt::UdpSocket> sender_socket_;
  std::vector<std::unique_ptr<rt::UdpSocket>> data_sockets_;
  std::vector<std::unique_ptr<rt::UdpSocket>> control_sockets_;
  std::unique_ptr<rmcast::MulticastSender> sender_;
  std::vector<std::unique_ptr<rmcast::MulticastReceiver>> receivers_;
  std::vector<std::vector<Buffer>> deliveries_;
};

struct PosixCase {
  rmcast::ProtocolKind kind;
  std::uint16_t base_port;
  std::uint8_t group_octet;
};

class PosixProtocolTest : public ::testing::TestWithParam<PosixCase> {};

INSTANTIATE_TEST_SUITE_P(
    Protocols, PosixProtocolTest,
    ::testing::Values(PosixCase{rmcast::ProtocolKind::kAck, 46000, 1},
                      PosixCase{rmcast::ProtocolKind::kNakPolling, 46100, 2},
                      PosixCase{rmcast::ProtocolKind::kRing, 46200, 3},
                      PosixCase{rmcast::ProtocolKind::kFlatTree, 46300, 4}),
    [](const auto& info) {
      return std::string(rmcast::protocol_name(info.param.kind)).substr(0, 3);
    });

TEST_P(PosixProtocolTest, TransfersOverRealLoopbackMulticast) {
  const PosixCase& c = GetParam();
  rmcast::ProtocolConfig config;
  config.kind = c.kind;
  config.packet_size = 8192;
  config.window_size = 8;
  config.poll_interval = 6;
  config.tree_height = 2;

  LoopbackGroup group(3, c.base_port, c.group_octet);
  if (!group.open(config)) GTEST_SKIP() << "sockets unavailable in this environment";

  Buffer message = pattern(200'000);
  ASSERT_TRUE(group.transfer(message)) << "transfer did not complete in wall time";
  for (std::size_t i = 0; i < group.n_receivers(); ++i) {
    ASSERT_EQ(group.deliveries(i).size(), 1u) << "receiver " << i;
    EXPECT_EQ(group.deliveries(i)[0], message) << "receiver " << i;
  }
}

TEST(PosixProtocol, SequentialMessages) {
  rmcast::ProtocolConfig config;
  config.kind = rmcast::ProtocolKind::kNakPolling;
  config.packet_size = 4096;
  config.window_size = 8;
  config.poll_interval = 6;

  LoopbackGroup group(2, 46400, 5);
  if (!group.open(config)) GTEST_SKIP() << "sockets unavailable in this environment";

  std::vector<Buffer> messages = {pattern(10'000), pattern(1), pattern(60'000)};
  for (const Buffer& m : messages) {
    ASSERT_TRUE(group.transfer(m));
  }
  for (std::size_t i = 0; i < group.n_receivers(); ++i) {
    ASSERT_EQ(group.deliveries(i).size(), messages.size());
    for (std::size_t k = 0; k < messages.size(); ++k) {
      EXPECT_EQ(group.deliveries(i)[k], messages[k]);
    }
  }
}

}  // namespace
}  // namespace rmc
