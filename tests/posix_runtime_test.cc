// Unit tests for the Posix runtime's timer heap and batched socket path:
// firing order and cancel safety under schedule/cancel churn, TX-ring
// batching and backpressure (no silent loss), GSO/GRO round-trips,
// truncation accounting, and the I/O-starvation regression (a timer
// rescheduling itself at zero delay must not stall socket traffic).
// Socket-dependent tests skip cleanly where the OS forbids sockets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/posix_runtime.h"

namespace rmc {
namespace {

// Port plan: this file owns 48800..48899 on loopback (the parity tests
// use 48300/48400, the posix_loopback bench 48600/48700).
constexpr std::uint16_t kBasePort = 48800;

std::uint64_t counter_value(rt::PosixRuntime& runtime, const char* name) {
  return runtime.metrics().counter(name).value();
}

// Loopback unicast socket pair on `port`; null sockets mean "skip".
struct Pair {
  std::unique_ptr<rt::UdpSocket> rx;
  std::unique_ptr<rt::UdpSocket> tx;
  net::Endpoint dst;

  bool open(rt::PosixRuntime& runtime, std::uint16_t port,
            rt::PosixSocketOptions rx_extra = {}, rt::PosixSocketOptions tx_extra = {}) {
    rx_extra.bind_addr = net::Ipv4Addr(127, 0, 0, 1);
    rx_extra.port = port;
    rx = runtime.open_socket(rx_extra);
    tx_extra.bind_addr = net::Ipv4Addr(127, 0, 0, 1);
    tx = runtime.open_socket(tx_extra);
    dst = {net::Ipv4Addr(127, 0, 0, 1), port};
    return rx != nullptr && tx != nullptr;
  }
};

TEST(PosixTimerTest, InterleavedScheduleCancelFiresInDeadlineOrder) {
  rt::PosixRuntime runtime;

  // 1000 schedule/cancel pairs: every timer lands in one of 10 delay
  // buckets, every odd-indexed timer is cancelled right after its
  // schedule. Scheduling takes microseconds against millisecond-spaced
  // buckets, so the expected fire order is bucket-ascending and, within
  // a bucket, schedule-ascending (the id tie-break).
  constexpr int kPairs = 1000;
  std::vector<int> fired;  // sequence numbers in fire order
  std::vector<rt::TimerId> ids(kPairs);
  for (int k = 0; k < kPairs; ++k) {
    const int bucket = (k * 7) % 10;
    const sim::Time delay = sim::Time(2'000'000) * (bucket + 1);  // 2ms..20ms
    ids[k] = runtime.schedule_after(delay, [k, &fired] { fired.push_back(k); });
    if (k % 2 == 1) runtime.cancel(ids[k]);
  }
  runtime.run_for(sim::seconds(0.2));

  ASSERT_EQ(fired.size(), static_cast<std::size_t>(kPairs / 2));
  auto key = [](int k) {
    // (bucket, schedule order): the order the heap must reproduce.
    return std::pair<int, int>((k * 7) % 10, k);
  };
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LT(key(fired[i - 1]), key(fired[i]))
        << "timers " << fired[i - 1] << " and " << fired[i] << " fired out of order";
  }
  for (int k : fired) EXPECT_EQ(k % 2, 0) << "cancelled timer " << k << " fired";

  EXPECT_EQ(counter_value(runtime, "posix.timers_fired"), kPairs / 2);
  EXPECT_EQ(counter_value(runtime, "posix.timers_cancelled"), kPairs / 2);

  // Cancelling an already-fired timer is a harmless no-op.
  runtime.cancel(ids[0]);
  EXPECT_EQ(counter_value(runtime, "posix.timers_cancelled"), kPairs / 2);
}

TEST(PosixTimerTest, CancelFromCallbackSuppressesPendingTimer) {
  rt::PosixRuntime runtime;
  bool victim_fired = false;
  const rt::TimerId victim = runtime.schedule_after(
      sim::Time(10'000'000), [&victim_fired] { victim_fired = true; });
  runtime.schedule_after(sim::Time(1'000'000),
                         [&runtime, victim] { runtime.cancel(victim); });
  runtime.run_for(sim::seconds(0.05));
  EXPECT_FALSE(victim_fired);
}

TEST(PosixSocketTest, BurstLargerThanOneBatchDeliversEverything) {
  rt::PosixRuntime runtime;
  Pair pair;
  if (!pair.open(runtime, kBasePort)) GTEST_SKIP() << "sockets unavailable";

  constexpr int kDatagrams = 300;  // > one sendmmsg batch and > one RX drain
  int received = 0;
  pair.rx->set_handler([&](const net::Endpoint&, BytesView payload) {
    ASSERT_EQ(payload.size(), 100u);
    EXPECT_EQ(payload.data()[0], 0xab);
    ++received;
  });
  const Buffer payload(100, 0xab);
  runtime.schedule_after(sim::Time(0), [&] {
    for (int i = 0; i < kDatagrams; ++i) {
      pair.tx->send_to(pair.dst, BytesView(payload.data(), payload.size()));
    }
  });
  for (int spin = 0; spin < 50 && received < kDatagrams; ++spin) {
    runtime.run_for(sim::Time(10'000'000));
  }
  EXPECT_EQ(received, kDatagrams);
  EXPECT_EQ(counter_value(runtime, "posix.datagrams_sent"),
            static_cast<std::uint64_t>(kDatagrams));
  EXPECT_EQ(counter_value(runtime, "posix.datagrams_received"),
            static_cast<std::uint64_t>(kDatagrams));
  // The burst was enqueued inside the loop, so it left in batched
  // syscalls — far fewer than one per datagram.
  const std::uint64_t tx_calls = counter_value(runtime, "posix.sendmmsg_calls") +
                                 counter_value(runtime, "posix.sendto_calls");
  EXPECT_LT(tx_calls, static_cast<std::uint64_t>(kDatagrams) / 4);
  EXPECT_EQ(counter_value(runtime, "posix.send_errors"), 0u);
  EXPECT_EQ(counter_value(runtime, "posix.tx_ring_drops"), 0u);
}

TEST(PosixSocketTest, ZeroDelayTimerPumpDoesNotStarveIo) {
  // Regression: fire_due_timers once looped until no timer was due, so a
  // self-rescheduling zero-delay timer kept the dispatch round alive
  // forever and the sockets never drained.
  rt::PosixRuntime runtime;
  Pair pair;
  if (!pair.open(runtime, kBasePort + 1)) GTEST_SKIP() << "sockets unavailable";

  int received = 0;
  pair.rx->set_handler([&](const net::Endpoint&, BytesView) { ++received; });
  const Buffer payload(64, 0x11);
  bool done = false;
  std::function<void()> pump = [&] {
    if (done) return;
    pair.tx->send_to(pair.dst, BytesView(payload.data(), payload.size()));
    runtime.schedule_after(sim::Time(0), pump);
  };
  runtime.schedule_after(sim::Time(0), pump);
  runtime.schedule_after(sim::Time(50'000'000), [&] {
    done = true;
    runtime.stop();
  });
  runtime.run();
  runtime.run_for(sim::Time(20'000'000));  // drain what is in flight
  EXPECT_GT(received, 100) << "socket RX starved by timer traffic";
}

TEST(PosixSocketTest, TinyRingBackpressuresWithoutLoss) {
  rt::PosixRuntime runtime;
  Pair pair;
  rt::PosixSocketOptions tx_extra;
  tx_extra.tx_ring_capacity = 8;
  if (!pair.open(runtime, kBasePort + 2, {}, tx_extra)) {
    GTEST_SKIP() << "sockets unavailable";
  }

  constexpr int kDatagrams = 500;
  int received = 0;
  pair.rx->set_handler([&](const net::Endpoint&, BytesView) { ++received; });
  const Buffer payload(200, 0x77);
  runtime.schedule_after(sim::Time(0), [&] {
    for (int i = 0; i < kDatagrams; ++i) {
      pair.tx->send_to(pair.dst, BytesView(payload.data(), payload.size()));
    }
  });
  for (int spin = 0; spin < 50 && received < kDatagrams; ++spin) {
    runtime.run_for(sim::Time(10'000'000));
  }
  // The ring was 8 deep for a 500-datagram burst: the sender had to
  // flush mid-enqueue (backpressure), but nothing may be dropped.
  EXPECT_EQ(received, kDatagrams);
  EXPECT_EQ(counter_value(runtime, "posix.tx_ring_drops"), 0u);
  EXPECT_EQ(counter_value(runtime, "posix.datagrams_sent"),
            static_cast<std::uint64_t>(kDatagrams));
}

TEST(PosixSocketTest, MulticastLoopbackRoundTrip) {
  rt::PosixRuntime runtime;
  rt::PosixSocketOptions rx_options;
  rx_options.port = kBasePort + 3;
  rx_options.reuse_addr = true;
  rx_options.join_groups = {net::Ipv4Addr(239, 77, 9, 1)};
  auto rx = runtime.open_socket(rx_options);
  rt::PosixSocketOptions tx_options;
  auto tx = runtime.open_socket(tx_options);
  if (!rx || !tx) GTEST_SKIP() << "sockets unavailable";

  int received = 0;
  rx->set_handler([&](const net::Endpoint&, BytesView payload) {
    EXPECT_EQ(payload.size(), 48u);
    ++received;
  });
  const Buffer payload(48, 0x3c);
  const net::Endpoint group = {net::Ipv4Addr(239, 77, 9, 1),
                               static_cast<std::uint16_t>(kBasePort + 3)};
  runtime.schedule_after(sim::Time(0), [&] {
    for (int i = 0; i < 10; ++i) {
      tx->send_to(group, BytesView(payload.data(), payload.size()));
    }
  });
  for (int spin = 0; spin < 50 && received < 10; ++spin) {
    runtime.run_for(sim::Time(10'000'000));
  }
  EXPECT_EQ(received, 10);
}

TEST(PosixSocketTest, OversizeDatagramCountsTruncation) {
  rt::PosixRuntime runtime;
  Pair pair;
  rt::PosixSocketOptions rx_extra;
  rx_extra.max_datagram_bytes = 512;
  // GSO/GRO off: a GRO receive buffer is always big enough, and this
  // test needs the slab slot to actually be the 512-byte cap.
  rx_extra.gso = false;
  if (!pair.open(runtime, kBasePort + 4, rx_extra)) {
    GTEST_SKIP() << "sockets unavailable";
  }

  int received = 0;
  std::size_t received_bytes = 0;
  pair.rx->set_handler([&](const net::Endpoint&, BytesView payload) {
    ++received;
    received_bytes = payload.size();
  });
  const Buffer payload(2000, 0x42);
  runtime.schedule_after(sim::Time(0), [&] {
    pair.tx->send_to(pair.dst, BytesView(payload.data(), payload.size()));
  });
  for (int spin = 0; spin < 50 && received < 1; ++spin) {
    runtime.run_for(sim::Time(10'000'000));
  }
  EXPECT_EQ(received, 1);
  EXPECT_EQ(received_bytes, 512u);  // truncated to the slab slot
  EXPECT_EQ(counter_value(runtime, "posix.rx_truncated"), 1u);
}

TEST(PosixSocketTest, SendRefSharesOneArenaBlockAcrossTheBurst) {
  rt::PosixRuntime runtime;
  Pair pair;
  if (!pair.open(runtime, kBasePort + 5)) GTEST_SKIP() << "sockets unavailable";

  int received = 0;
  pair.rx->set_handler([&](const net::Endpoint&, BytesView payload) {
    ASSERT_EQ(payload.size(), 256u);
    EXPECT_EQ(payload.data()[17], static_cast<std::uint8_t>(17 * 131 + 7));
    ++received;
  });
  net::PayloadRef block = net::PayloadRef::allocate(256);
  for (std::size_t i = 0; i < 256; ++i) {
    block.mutable_data()[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  runtime.schedule_after(sim::Time(0), [&] {
    for (int i = 0; i < 50; ++i) pair.tx->send_ref(pair.dst, block);
  });
  for (int spin = 0; spin < 50 && received < 50; ++spin) {
    runtime.run_for(sim::Time(10'000'000));
  }
  EXPECT_EQ(received, 50);
}

TEST(PosixSocketTest, BatchSizeHistogramsAreRecorded) {
  rt::PosixRuntime runtime;
  Pair pair;
  if (!pair.open(runtime, kBasePort + 6)) GTEST_SKIP() << "sockets unavailable";

  int received = 0;
  pair.rx->set_handler([&](const net::Endpoint&, BytesView) { ++received; });
  const Buffer payload(128, 0x01);
  runtime.schedule_after(sim::Time(0), [&] {
    for (int i = 0; i < 100; ++i) {
      pair.tx->send_to(pair.dst, BytesView(payload.data(), payload.size()));
    }
  });
  for (int spin = 0; spin < 50 && received < 100; ++spin) {
    runtime.run_for(sim::Time(10'000'000));
  }
  ASSERT_EQ(received, 100);
  metrics::Registry& m = runtime.metrics();
  const metrics::LatencyHistogram* tx = m.find_histogram("posix.tx_batch_datagrams");
  const metrics::LatencyHistogram* rx = m.find_histogram("posix.rx_batch_datagrams");
  ASSERT_NE(tx, nullptr);
  ASSERT_NE(rx, nullptr);
  EXPECT_GT(tx->count(), 0u);
  EXPECT_GT(rx->count(), 0u);
  EXPECT_GT(m.gauge("posix.tx_ring_depth_hwm").value(), 0.0);
}

}  // namespace
}  // namespace rmc
