// Shared fixture plumbing for protocol-level tests: a Testbed with one
// MulticastSender and N MulticastReceivers, delivery recording, and a
// bounded-time run helper.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/testbed.h"
#include "rmcast/receiver.h"
#include "rmcast/sender.h"

namespace rmc::test {

inline Buffer pattern(std::size_t n) {
  Buffer b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::uint8_t>(i * 131 + 7);
  return b;
}

class ProtocolHarness {
 public:
  ProtocolHarness(std::size_t n_receivers, rmcast::ProtocolConfig config,
                  inet::ClusterParams cluster_params = {})
      : bed_(n_receivers, cluster_params), config_(config) {
    sender_ = std::make_unique<rmcast::MulticastSender>(
        bed_.sender_runtime(), bed_.sender_socket(), bed_.membership(), config);
    deliveries_.resize(n_receivers);
    for (std::size_t i = 0; i < n_receivers; ++i) {
      receivers_.push_back(std::make_unique<rmcast::MulticastReceiver>(
          bed_.receiver_runtime(i), bed_.receiver_data_socket(i),
          bed_.receiver_control_socket(i), bed_.membership(), i, config));
      receivers_[i]->set_message_handler(
          [this, i](const Buffer& message, std::uint32_t session) {
            deliveries_[i].push_back({session, message});
          });
    }
  }

  // Sends and runs until sender completion (or the time limit). Returns
  // true on completion.
  bool send_and_run(const Buffer& message,
                    sim::Time limit = sim::seconds(30.0)) {
    bool done = false;
    sender_->send(BytesView(message.data(), message.size()),
                  [&](const rmcast::SendOutcome&) { done = true; });
    run_until_done(done, limit);
    return done;
  }

  void run_until_done(const bool& done, sim::Time limit) {
    while (!done && bed_.simulator().now() < limit) {
      if (!bed_.simulator().step()) break;
    }
  }

  struct Delivery {
    std::uint32_t session;
    Buffer message;
  };

  harness::Testbed& bed() { return bed_; }
  rmcast::MulticastSender& sender() { return *sender_; }
  rmcast::MulticastReceiver& receiver(std::size_t i) { return *receivers_[i]; }
  std::size_t n_receivers() const { return receivers_.size(); }
  const std::vector<Delivery>& deliveries(std::size_t i) const { return deliveries_[i]; }

  // Asserts every receiver delivered exactly the given messages, in order.
  void expect_all_delivered(const std::vector<Buffer>& messages) {
    for (std::size_t i = 0; i < receivers_.size(); ++i) {
      ASSERT_EQ(deliveries_[i].size(), messages.size()) << "receiver " << i;
      for (std::size_t m = 0; m < messages.size(); ++m) {
        EXPECT_EQ(deliveries_[i][m].message, messages[m])
            << "receiver " << i << " message " << m;
      }
    }
  }

 private:
  harness::Testbed bed_;
  rmcast::ProtocolConfig config_;
  std::unique_ptr<rmcast::MulticastSender> sender_;
  std::vector<std::unique_ptr<rmcast::MulticastReceiver>> receivers_;
  std::vector<std::vector<Delivery>> deliveries_;
};

inline rmcast::ProtocolConfig config_for(rmcast::ProtocolKind kind) {
  rmcast::ProtocolConfig c;
  c.kind = kind;
  c.packet_size = 4000;
  c.window_size = 16;
  c.poll_interval = 12;
  c.tree_height = 3;
  return c;
}

}  // namespace rmc::test
