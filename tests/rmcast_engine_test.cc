// Unit tests for the per-protocol engine layer and the ProtocolRegistry.
#include <gtest/gtest.h>

#include <vector>

#include "rmcast/engine/registry.h"
#include "rmcast/group.h"
#include "rmcast/wire.h"

namespace rmc::rmcast {
namespace {

const EngineEntry& entry(ProtocolKind kind) {
  return ProtocolRegistry::instance().entry(kind);
}

const SenderEngine& sender_engine(ProtocolKind kind) {
  return *entry(kind).sender_engine();
}

const ReceiverEngine& receiver_engine(ProtocolKind kind) {
  return *entry(kind).receiver_engine();
}

TEST(ProtocolRegistryTest, CoversEveryKindInEnumOrder) {
  const auto& entries = ProtocolRegistry::instance().entries();
  ASSERT_EQ(entries.size(), 7u);
  EXPECT_EQ(entries[0].kind, ProtocolKind::kAck);
  EXPECT_EQ(entries[1].kind, ProtocolKind::kNakPolling);
  EXPECT_EQ(entries[2].kind, ProtocolKind::kRing);
  EXPECT_EQ(entries[3].kind, ProtocolKind::kFlatTree);
  EXPECT_EQ(entries[4].kind, ProtocolKind::kBinaryTree);
  EXPECT_EQ(entries[5].kind, ProtocolKind::kEcXor);
  EXPECT_EQ(entries[6].kind, ProtocolKind::kEcRs);
  for (const EngineEntry& e : entries) {
    EXPECT_STRNE(e.traits.id, "");
    EXPECT_STRNE(e.traits.display_name, "");
    EXPECT_NE(e.sender_engine(), nullptr);
    EXPECT_NE(e.receiver_engine(), nullptr);
  }
}

TEST(ProtocolRegistryTest, EnginesAreSingletons) {
  EXPECT_EQ(entry(ProtocolKind::kRing).sender_engine(),
            entry(ProtocolKind::kRing).sender_engine());
  EXPECT_EQ(entry(ProtocolKind::kRing).receiver_engine(),
            entry(ProtocolKind::kRing).receiver_engine());
}

TEST(ProtocolRegistryTest, FindsEntriesById) {
  const ProtocolRegistry& reg = ProtocolRegistry::instance();
  ASSERT_NE(reg.find("ack"), nullptr);
  EXPECT_EQ(reg.find("ack")->kind, ProtocolKind::kAck);
  ASSERT_NE(reg.find("nak"), nullptr);
  EXPECT_EQ(reg.find("nak")->kind, ProtocolKind::kNakPolling);
  ASSERT_NE(reg.find("ring"), nullptr);
  EXPECT_EQ(reg.find("ring")->kind, ProtocolKind::kRing);
  ASSERT_NE(reg.find("tree"), nullptr);
  EXPECT_EQ(reg.find("tree")->kind, ProtocolKind::kFlatTree);
  ASSERT_NE(reg.find("btree"), nullptr);
  EXPECT_EQ(reg.find("btree")->kind, ProtocolKind::kBinaryTree);
  ASSERT_NE(reg.find("ecxor"), nullptr);
  EXPECT_EQ(reg.find("ecxor")->kind, ProtocolKind::kEcXor);
  ASSERT_NE(reg.find("ecrs"), nullptr);
  EXPECT_EQ(reg.find("ecrs")->kind, ProtocolKind::kEcRs);
  EXPECT_EQ(reg.find("no-such-protocol"), nullptr);
}

TEST(ProtocolRegistryTest, DisplayNamesMatchProtocolName) {
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    EXPECT_STREQ(e.traits.display_name, protocol_name(e.kind));
  }
}

TEST(SenderEngineTest, FlatProtocolsTrackEveryReceiver) {
  ProtocolConfig config;
  for (ProtocolKind kind :
       {ProtocolKind::kAck, ProtocolKind::kNakPolling, ProtocolKind::kRing}) {
    config.kind = kind;
    const std::vector<std::size_t> units = sender_engine(kind).initial_units(4, config);
    EXPECT_EQ(units, (std::vector<std::size_t>{0, 1, 2, 3}));
    const std::vector<std::size_t> live = {0, 2, 3};
    EXPECT_EQ(sender_engine(kind).live_units(live, config), live);
    EXPECT_FALSE(sender_engine(kind).accepts_suspects());
  }
}

TEST(SenderEngineTest, FlatTreeUnitsAreChainHeads) {
  ProtocolConfig config;
  config.kind = ProtocolKind::kFlatTree;
  config.tree_height = 3;
  const SenderEngine& engine = sender_engine(ProtocolKind::kFlatTree);
  EXPECT_EQ(engine.initial_units(7, config), tree_chain_heads(7, 3));
  const std::vector<std::size_t> live = {1, 2, 4, 5, 6};
  EXPECT_EQ(engine.live_units(live, config), tree_chain_heads_live(live, 3));
  EXPECT_TRUE(engine.accepts_suspects());
}

TEST(SenderEngineTest, BinaryTreeUnitIsTheRoot) {
  ProtocolConfig config;
  config.kind = ProtocolKind::kBinaryTree;
  const SenderEngine& engine = sender_engine(ProtocolKind::kBinaryTree);
  EXPECT_EQ(engine.initial_units(7, config), (std::vector<std::size_t>{0}));
  EXPECT_EQ(engine.live_units({3, 4, 6}, config), (std::vector<std::size_t>{3}));
  EXPECT_TRUE(engine.accepts_suspects());
}

TEST(SenderEngineTest, OnlyNakPollingSetsThePollFlag) {
  ProtocolConfig config;
  config.poll_interval = 4;
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    config.kind = e.kind;
    const SenderEngine& engine = *e.sender_engine();
    if (e.kind == ProtocolKind::kNakPolling) {
      EXPECT_EQ(engine.data_flags(3, false, config), kFlagPoll);
      EXPECT_EQ(engine.data_flags(4, false, config), 0);
      EXPECT_EQ(engine.data_flags(4, true, config), kFlagPoll);  // forced
      EXPECT_TRUE(engine.needs_forced_poll());
    } else {
      EXPECT_EQ(engine.data_flags(3, false, config), 0);
      EXPECT_EQ(engine.data_flags(3, true, config), 0);
      EXPECT_FALSE(engine.needs_forced_poll());
    }
  }
}

TEST(SenderEngineTest, EvictThresholdsScaleWithTreeDepth) {
  ProtocolConfig config;
  config.max_retransmit_rounds = 5;

  // Flat protocols: the configured rounds, regardless of group size.
  for (ProtocolKind kind :
       {ProtocolKind::kAck, ProtocolKind::kNakPolling, ProtocolKind::kRing}) {
    config.kind = kind;
    EXPECT_EQ(sender_engine(kind).evict_threshold(30, config), 5u);
    EXPECT_EQ(sender_engine(kind).evict_threshold(1, config), 5u);
  }

  // Flat tree: rounds * (levels + 2), levels = min(H, n_live) - 1.
  config.kind = ProtocolKind::kFlatTree;
  config.tree_height = 6;
  EXPECT_EQ(sender_engine(ProtocolKind::kFlatTree).evict_threshold(30, config),
            5u * (5 + 2));
  EXPECT_EQ(sender_engine(ProtocolKind::kFlatTree).evict_threshold(3, config),
            5u * (2 + 2));
  EXPECT_EQ(sender_engine(ProtocolKind::kFlatTree).evict_threshold(1, config),
            5u * (0 + 2));

  // Binary tree: levels is the depth of the largest full tree under n_live.
  config.kind = ProtocolKind::kBinaryTree;
  EXPECT_EQ(sender_engine(ProtocolKind::kBinaryTree).evict_threshold(1, config),
            5u * (0 + 2));
  EXPECT_EQ(sender_engine(ProtocolKind::kBinaryTree).evict_threshold(3, config),
            5u * (1 + 2));
  EXPECT_EQ(sender_engine(ProtocolKind::kBinaryTree).evict_threshold(30, config),
            5u * (4 + 2));
}

TEST(ReceiverEngineTest, TreeClassification) {
  EXPECT_FALSE(receiver_engine(ProtocolKind::kAck).is_tree());
  EXPECT_FALSE(receiver_engine(ProtocolKind::kNakPolling).is_tree());
  EXPECT_FALSE(receiver_engine(ProtocolKind::kRing).is_tree());
  EXPECT_TRUE(receiver_engine(ProtocolKind::kFlatTree).is_tree());
  EXPECT_TRUE(receiver_engine(ProtocolKind::kBinaryTree).is_tree());
  // The classification must agree with the config-layer predicate.
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    EXPECT_EQ(e.receiver_engine()->is_tree(), is_tree_protocol(e.kind));
  }
}

TEST(ReceiverEngineTest, OnlyTheRingReformsWithoutLinks) {
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    EXPECT_EQ(e.receiver_engine()->reforms_on_evict(), e.kind == ProtocolKind::kRing);
  }
}

TEST(ReceiverEngineTest, TreeEnginesMirrorTheLinkBuilders) {
  ProtocolConfig config;
  config.kind = ProtocolKind::kFlatTree;
  config.tree_height = 3;
  const ReceiverEngine& flat = receiver_engine(ProtocolKind::kFlatTree);
  for (std::size_t id = 0; id < 7; ++id) {
    const TreeLinks expected = flat_tree_links(id, 7, 3);
    const TreeLinks got = flat.full_links(id, 7, config);
    EXPECT_EQ(got.has_parent, expected.has_parent);
    EXPECT_EQ(got.parent, expected.parent);
    EXPECT_EQ(got.children, expected.children);
  }
  config.kind = ProtocolKind::kBinaryTree;
  const ReceiverEngine& btree = receiver_engine(ProtocolKind::kBinaryTree);
  const std::vector<std::size_t> live = {0, 2, 3, 5};
  for (std::size_t id : live) {
    const TreeLinks expected = binary_tree_links_live(id, live);
    const TreeLinks got = btree.live_links(id, live, config);
    EXPECT_EQ(got.has_parent, expected.has_parent);
    EXPECT_EQ(got.parent, expected.parent);
    EXPECT_EQ(got.children, expected.children);
  }
}

TEST(ReceiverEngineTest, RepairFlagsReconstructTheDeterministicPoll) {
  ProtocolConfig config;
  config.poll_interval = 4;
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    config.kind = e.kind;
    if (e.kind == ProtocolKind::kNakPolling) {
      EXPECT_EQ(e.receiver_engine()->repair_flags(3, config), kFlagPoll);
      EXPECT_EQ(e.receiver_engine()->repair_flags(4, config), 0);
    } else {
      EXPECT_EQ(e.receiver_engine()->repair_flags(3, config), 0);
    }
  }
}

TEST(ProtocolRegistryTest, ValidateHooksMatchTheConfigLayer) {
  // The registry's per-kind validate is what the config-layer validate()
  // routes through; spot-check the kind-specific failure modes.
  ProtocolConfig nak;
  nak.kind = ProtocolKind::kNakPolling;
  nak.poll_interval = 0;
  EXPECT_FALSE(entry(ProtocolKind::kNakPolling).traits.validate(nak, 10).empty());
  nak.poll_interval = nak.window_size + 1;
  EXPECT_FALSE(entry(ProtocolKind::kNakPolling).traits.validate(nak, 10).empty());
  nak.poll_interval = nak.window_size;
  EXPECT_TRUE(entry(ProtocolKind::kNakPolling).traits.validate(nak, 10).empty());

  ProtocolConfig ring;
  ring.kind = ProtocolKind::kRing;
  ring.window_size = 10;
  EXPECT_FALSE(entry(ProtocolKind::kRing).traits.validate(ring, 10).empty());
  ring.window_size = 11;
  EXPECT_TRUE(entry(ProtocolKind::kRing).traits.validate(ring, 10).empty());

  ProtocolConfig tree;
  tree.kind = ProtocolKind::kFlatTree;
  tree.tree_height = 0;
  EXPECT_FALSE(entry(ProtocolKind::kFlatTree).traits.validate(tree, 10).empty());
  tree.tree_height = 11;
  EXPECT_FALSE(entry(ProtocolKind::kFlatTree).traits.validate(tree, 10).empty());
  tree.tree_height = 5;
  EXPECT_TRUE(entry(ProtocolKind::kFlatTree).traits.validate(tree, 10).empty());
}

TEST(ProtocolRegistryTest, ValidateHooksCoverTheFecKnobs) {
  // An EC config must carry its FEC shape plus the reception options the
  // group machinery depends on; the hooks reject each omission by name.
  ProtocolConfig ec;
  ec.kind = ProtocolKind::kEcRs;
  EXPECT_FALSE(entry(ProtocolKind::kEcRs).traits.validate(ec, 10).empty())
      << "unset fec must be rejected";
  ec.fec.k = 8;
  ec.fec.m = 2;
  ec.window_size = 50;
  EXPECT_FALSE(entry(ProtocolKind::kEcRs).traits.validate(ec, 10).empty())
      << "selective_repeat is mandatory";
  ec.selective_repeat = true;
  EXPECT_FALSE(entry(ProtocolKind::kEcRs).traits.validate(ec, 10).empty())
      << "receiver_driven_timeouts is mandatory";
  ec.receiver_driven_timeouts = true;
  EXPECT_TRUE(entry(ProtocolKind::kEcRs).traits.validate(ec, 10).empty());

  // The group must fit the window or the sender stalls mid-group.
  ec.window_size = ec.fec.group_size() - 1;
  EXPECT_FALSE(entry(ProtocolKind::kEcRs).traits.validate(ec, 10).empty());
  ec.window_size = ec.fec.group_size();
  EXPECT_TRUE(entry(ProtocolKind::kEcRs).traits.validate(ec, 10).empty());

  // The GROUP_NAK bitmap is 64 bits wide: k beyond it must fail.
  ec.fec.k = 65;
  ec.window_size = 80;
  EXPECT_FALSE(entry(ProtocolKind::kEcRs).traits.validate(ec, 10).empty());
  ec.fec.k = 8;

  // ARQ-side options that conflict with the parity machinery.
  ec.window_size = 50;
  ec.multicast_nak_suppression = true;
  ec.nak_suppress_delay = 0.001;
  EXPECT_FALSE(entry(ProtocolKind::kEcRs).traits.validate(ec, 10).empty());
  ec.multicast_nak_suppression = false;
  ec.unicast_nak_retransmissions = true;
  EXPECT_FALSE(entry(ProtocolKind::kEcRs).traits.validate(ec, 10).empty());
  ec.unicast_nak_retransmissions = false;

  // EC-XOR is the m = 1 special case and rejects anything wider.
  ec.kind = ProtocolKind::kEcXor;
  ec.fec.m = 2;
  EXPECT_FALSE(entry(ProtocolKind::kEcXor).traits.validate(ec, 10).empty());
  ec.fec.m = 1;
  EXPECT_TRUE(entry(ProtocolKind::kEcXor).traits.validate(ec, 10).empty());

  // Conversely the ARQ kinds must reject FEC knobs (config-layer rule).
  ProtocolConfig stray;
  stray.kind = ProtocolKind::kNakPolling;
  stray.poll_interval = 2;
  stray.fec.k = 8;
  stray.fec.m = 1;
  EXPECT_FALSE(validate(stray, 10).empty());
}

TEST(ProtocolRegistryTest, OnlyTheEcKindsCarryTheFecTrait) {
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    const bool ec =
        e.kind == ProtocolKind::kEcXor || e.kind == ProtocolKind::kEcRs;
    EXPECT_EQ(e.traits.fec, ec);
    EXPECT_EQ(e.receiver_engine()->is_fec(), ec);
    EXPECT_EQ(is_fec_protocol(e.kind), ec);
  }
}

TEST(SenderEngineTest, EcParityAndRepairPlansFollowTheGroupShape) {
  ProtocolConfig config;
  config.kind = ProtocolKind::kEcRs;
  config.fec.k = 8;
  config.fec.m = 3;
  const SenderEngine& engine = sender_engine(ProtocolKind::kEcRs);
  EXPECT_EQ(engine.parity_per_group(config), 3u);

  // The repair plan expands the missing-bitmap into absolute sequence
  // numbers within the group; bits at or past group_data are ignored
  // (a short tail group has no blocks there).
  const std::uint64_t missing = 0b1000'0101;
  EXPECT_EQ(engine.make_repair_plan(2, missing, 8, config),
            (std::vector<std::uint32_t>{16, 18, 23}));
  EXPECT_EQ(engine.make_repair_plan(2, missing, 3, config),
            (std::vector<std::uint32_t>{16, 18}));
  EXPECT_EQ(engine.make_repair_plan(0, 0, 8, config), std::vector<std::uint32_t>{});

  // ARQ engines keep the do-nothing defaults: no parity, empty plans.
  const SenderEngine& nak = sender_engine(ProtocolKind::kNakPolling);
  EXPECT_EQ(nak.parity_per_group(config), 0u);
  EXPECT_TRUE(nak.make_repair_plan(2, missing, 8, config).empty());
}

TEST(ReceiverEngineTest, EcGroupDecodabilityIsTheMdsBound) {
  const ReceiverEngine& engine = receiver_engine(ProtocolKind::kEcRs);
  EXPECT_TRUE(engine.group_decodable(0, 0));
  EXPECT_TRUE(engine.group_decodable(3, 3));
  EXPECT_TRUE(engine.group_decodable(2, 3));
  EXPECT_FALSE(engine.group_decodable(4, 3));
  // ARQ receivers never claim decodability.
  EXPECT_FALSE(receiver_engine(ProtocolKind::kAck).group_decodable(0, 0));
}

TEST(ProtocolRegistryTest, DescribeKnobsCarryTheKindSpecificSuffix) {
  ProtocolConfig config;
  config.poll_interval = 12;
  config.tree_height = 6;
  config.fec.k = 16;
  config.fec.m = 4;
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    config.kind = e.kind;
    const std::string knobs = e.traits.describe_knobs(config);
    if (e.kind == ProtocolKind::kNakPolling) {
      EXPECT_EQ(knobs, " poll=12");
    } else if (e.kind == ProtocolKind::kFlatTree) {
      EXPECT_EQ(knobs, " H=6");
    } else if (e.traits.fec) {
      EXPECT_EQ(knobs, " k=16 m=4");
    } else {
      EXPECT_EQ(knobs, "");
    }
  }
}

}  // namespace
}  // namespace rmc::rmcast
