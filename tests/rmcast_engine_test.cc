// Unit tests for the per-protocol engine layer and the ProtocolRegistry.
#include <gtest/gtest.h>

#include <vector>

#include "rmcast/engine/registry.h"
#include "rmcast/group.h"
#include "rmcast/wire.h"

namespace rmc::rmcast {
namespace {

const EngineEntry& entry(ProtocolKind kind) {
  return ProtocolRegistry::instance().entry(kind);
}

const SenderEngine& sender_engine(ProtocolKind kind) {
  return *entry(kind).sender_engine();
}

const ReceiverEngine& receiver_engine(ProtocolKind kind) {
  return *entry(kind).receiver_engine();
}

TEST(ProtocolRegistryTest, CoversEveryKindInEnumOrder) {
  const auto& entries = ProtocolRegistry::instance().entries();
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries[0].kind, ProtocolKind::kAck);
  EXPECT_EQ(entries[1].kind, ProtocolKind::kNakPolling);
  EXPECT_EQ(entries[2].kind, ProtocolKind::kRing);
  EXPECT_EQ(entries[3].kind, ProtocolKind::kFlatTree);
  EXPECT_EQ(entries[4].kind, ProtocolKind::kBinaryTree);
  for (const EngineEntry& e : entries) {
    EXPECT_STRNE(e.id, "");
    EXPECT_STRNE(e.display_name, "");
    EXPECT_NE(e.sender_engine(), nullptr);
    EXPECT_NE(e.receiver_engine(), nullptr);
  }
}

TEST(ProtocolRegistryTest, EnginesAreSingletons) {
  EXPECT_EQ(entry(ProtocolKind::kRing).sender_engine(),
            entry(ProtocolKind::kRing).sender_engine());
  EXPECT_EQ(entry(ProtocolKind::kRing).receiver_engine(),
            entry(ProtocolKind::kRing).receiver_engine());
}

TEST(ProtocolRegistryTest, FindsEntriesById) {
  const ProtocolRegistry& reg = ProtocolRegistry::instance();
  ASSERT_NE(reg.find("ack"), nullptr);
  EXPECT_EQ(reg.find("ack")->kind, ProtocolKind::kAck);
  ASSERT_NE(reg.find("nak"), nullptr);
  EXPECT_EQ(reg.find("nak")->kind, ProtocolKind::kNakPolling);
  ASSERT_NE(reg.find("ring"), nullptr);
  EXPECT_EQ(reg.find("ring")->kind, ProtocolKind::kRing);
  ASSERT_NE(reg.find("tree"), nullptr);
  EXPECT_EQ(reg.find("tree")->kind, ProtocolKind::kFlatTree);
  ASSERT_NE(reg.find("btree"), nullptr);
  EXPECT_EQ(reg.find("btree")->kind, ProtocolKind::kBinaryTree);
  EXPECT_EQ(reg.find("no-such-protocol"), nullptr);
}

TEST(ProtocolRegistryTest, DisplayNamesMatchProtocolName) {
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    EXPECT_STREQ(e.display_name, protocol_name(e.kind));
  }
}

TEST(SenderEngineTest, FlatProtocolsTrackEveryReceiver) {
  ProtocolConfig config;
  for (ProtocolKind kind :
       {ProtocolKind::kAck, ProtocolKind::kNakPolling, ProtocolKind::kRing}) {
    config.kind = kind;
    const std::vector<std::size_t> units = sender_engine(kind).initial_units(4, config);
    EXPECT_EQ(units, (std::vector<std::size_t>{0, 1, 2, 3}));
    const std::vector<std::size_t> live = {0, 2, 3};
    EXPECT_EQ(sender_engine(kind).live_units(live, config), live);
    EXPECT_FALSE(sender_engine(kind).accepts_suspects());
  }
}

TEST(SenderEngineTest, FlatTreeUnitsAreChainHeads) {
  ProtocolConfig config;
  config.kind = ProtocolKind::kFlatTree;
  config.tree_height = 3;
  const SenderEngine& engine = sender_engine(ProtocolKind::kFlatTree);
  EXPECT_EQ(engine.initial_units(7, config), tree_chain_heads(7, 3));
  const std::vector<std::size_t> live = {1, 2, 4, 5, 6};
  EXPECT_EQ(engine.live_units(live, config), tree_chain_heads_live(live, 3));
  EXPECT_TRUE(engine.accepts_suspects());
}

TEST(SenderEngineTest, BinaryTreeUnitIsTheRoot) {
  ProtocolConfig config;
  config.kind = ProtocolKind::kBinaryTree;
  const SenderEngine& engine = sender_engine(ProtocolKind::kBinaryTree);
  EXPECT_EQ(engine.initial_units(7, config), (std::vector<std::size_t>{0}));
  EXPECT_EQ(engine.live_units({3, 4, 6}, config), (std::vector<std::size_t>{3}));
  EXPECT_TRUE(engine.accepts_suspects());
}

TEST(SenderEngineTest, OnlyNakPollingSetsThePollFlag) {
  ProtocolConfig config;
  config.poll_interval = 4;
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    config.kind = e.kind;
    const SenderEngine& engine = *e.sender_engine();
    if (e.kind == ProtocolKind::kNakPolling) {
      EXPECT_EQ(engine.data_flags(3, false, config), kFlagPoll);
      EXPECT_EQ(engine.data_flags(4, false, config), 0);
      EXPECT_EQ(engine.data_flags(4, true, config), kFlagPoll);  // forced
      EXPECT_TRUE(engine.needs_forced_poll());
    } else {
      EXPECT_EQ(engine.data_flags(3, false, config), 0);
      EXPECT_EQ(engine.data_flags(3, true, config), 0);
      EXPECT_FALSE(engine.needs_forced_poll());
    }
  }
}

TEST(SenderEngineTest, EvictThresholdsScaleWithTreeDepth) {
  ProtocolConfig config;
  config.max_retransmit_rounds = 5;

  // Flat protocols: the configured rounds, regardless of group size.
  for (ProtocolKind kind :
       {ProtocolKind::kAck, ProtocolKind::kNakPolling, ProtocolKind::kRing}) {
    config.kind = kind;
    EXPECT_EQ(sender_engine(kind).evict_threshold(30, config), 5u);
    EXPECT_EQ(sender_engine(kind).evict_threshold(1, config), 5u);
  }

  // Flat tree: rounds * (levels + 2), levels = min(H, n_live) - 1.
  config.kind = ProtocolKind::kFlatTree;
  config.tree_height = 6;
  EXPECT_EQ(sender_engine(ProtocolKind::kFlatTree).evict_threshold(30, config),
            5u * (5 + 2));
  EXPECT_EQ(sender_engine(ProtocolKind::kFlatTree).evict_threshold(3, config),
            5u * (2 + 2));
  EXPECT_EQ(sender_engine(ProtocolKind::kFlatTree).evict_threshold(1, config),
            5u * (0 + 2));

  // Binary tree: levels is the depth of the largest full tree under n_live.
  config.kind = ProtocolKind::kBinaryTree;
  EXPECT_EQ(sender_engine(ProtocolKind::kBinaryTree).evict_threshold(1, config),
            5u * (0 + 2));
  EXPECT_EQ(sender_engine(ProtocolKind::kBinaryTree).evict_threshold(3, config),
            5u * (1 + 2));
  EXPECT_EQ(sender_engine(ProtocolKind::kBinaryTree).evict_threshold(30, config),
            5u * (4 + 2));
}

TEST(ReceiverEngineTest, TreeClassification) {
  EXPECT_FALSE(receiver_engine(ProtocolKind::kAck).is_tree());
  EXPECT_FALSE(receiver_engine(ProtocolKind::kNakPolling).is_tree());
  EXPECT_FALSE(receiver_engine(ProtocolKind::kRing).is_tree());
  EXPECT_TRUE(receiver_engine(ProtocolKind::kFlatTree).is_tree());
  EXPECT_TRUE(receiver_engine(ProtocolKind::kBinaryTree).is_tree());
  // The classification must agree with the config-layer predicate.
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    EXPECT_EQ(e.receiver_engine()->is_tree(), is_tree_protocol(e.kind));
  }
}

TEST(ReceiverEngineTest, OnlyTheRingReformsWithoutLinks) {
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    EXPECT_EQ(e.receiver_engine()->reforms_on_evict(), e.kind == ProtocolKind::kRing);
  }
}

TEST(ReceiverEngineTest, TreeEnginesMirrorTheLinkBuilders) {
  ProtocolConfig config;
  config.kind = ProtocolKind::kFlatTree;
  config.tree_height = 3;
  const ReceiverEngine& flat = receiver_engine(ProtocolKind::kFlatTree);
  for (std::size_t id = 0; id < 7; ++id) {
    const TreeLinks expected = flat_tree_links(id, 7, 3);
    const TreeLinks got = flat.full_links(id, 7, config);
    EXPECT_EQ(got.has_parent, expected.has_parent);
    EXPECT_EQ(got.parent, expected.parent);
    EXPECT_EQ(got.children, expected.children);
  }
  config.kind = ProtocolKind::kBinaryTree;
  const ReceiverEngine& btree = receiver_engine(ProtocolKind::kBinaryTree);
  const std::vector<std::size_t> live = {0, 2, 3, 5};
  for (std::size_t id : live) {
    const TreeLinks expected = binary_tree_links_live(id, live);
    const TreeLinks got = btree.live_links(id, live, config);
    EXPECT_EQ(got.has_parent, expected.has_parent);
    EXPECT_EQ(got.parent, expected.parent);
    EXPECT_EQ(got.children, expected.children);
  }
}

TEST(ReceiverEngineTest, RepairFlagsReconstructTheDeterministicPoll) {
  ProtocolConfig config;
  config.poll_interval = 4;
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    config.kind = e.kind;
    if (e.kind == ProtocolKind::kNakPolling) {
      EXPECT_EQ(e.receiver_engine()->repair_flags(3, config), kFlagPoll);
      EXPECT_EQ(e.receiver_engine()->repair_flags(4, config), 0);
    } else {
      EXPECT_EQ(e.receiver_engine()->repair_flags(3, config), 0);
    }
  }
}

TEST(ProtocolRegistryTest, ValidateHooksMatchTheConfigLayer) {
  // The registry's per-kind validate is what the config-layer validate()
  // routes through; spot-check the kind-specific failure modes.
  ProtocolConfig nak;
  nak.kind = ProtocolKind::kNakPolling;
  nak.poll_interval = 0;
  EXPECT_FALSE(entry(ProtocolKind::kNakPolling).validate(nak, 10).empty());
  nak.poll_interval = nak.window_size + 1;
  EXPECT_FALSE(entry(ProtocolKind::kNakPolling).validate(nak, 10).empty());
  nak.poll_interval = nak.window_size;
  EXPECT_TRUE(entry(ProtocolKind::kNakPolling).validate(nak, 10).empty());

  ProtocolConfig ring;
  ring.kind = ProtocolKind::kRing;
  ring.window_size = 10;
  EXPECT_FALSE(entry(ProtocolKind::kRing).validate(ring, 10).empty());
  ring.window_size = 11;
  EXPECT_TRUE(entry(ProtocolKind::kRing).validate(ring, 10).empty());

  ProtocolConfig tree;
  tree.kind = ProtocolKind::kFlatTree;
  tree.tree_height = 0;
  EXPECT_FALSE(entry(ProtocolKind::kFlatTree).validate(tree, 10).empty());
  tree.tree_height = 11;
  EXPECT_FALSE(entry(ProtocolKind::kFlatTree).validate(tree, 10).empty());
  tree.tree_height = 5;
  EXPECT_TRUE(entry(ProtocolKind::kFlatTree).validate(tree, 10).empty());
}

TEST(ProtocolRegistryTest, DescribeKnobsCarryTheKindSpecificSuffix) {
  ProtocolConfig config;
  config.poll_interval = 12;
  config.tree_height = 6;
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    config.kind = e.kind;
    const std::string knobs = e.describe_knobs(config);
    if (e.kind == ProtocolKind::kNakPolling) {
      EXPECT_EQ(knobs, " poll=12");
    } else if (e.kind == ProtocolKind::kFlatTree) {
      EXPECT_EQ(knobs, " H=6");
    } else {
      EXPECT_EQ(knobs, "");
    }
  }
}

}  // namespace
}  // namespace rmc::rmcast
