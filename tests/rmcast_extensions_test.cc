// Tests for the protocol extensions beyond the paper's four baseline
// configurations: the binary-tree aggregation structure (the paper's
// Figure-4 baseline), receiver-side multicast NAK suppression (the cited
// alternative to the paper's sender-side scheme), unicast NAK repairs,
// and rate-based flow control.
#include <gtest/gtest.h>

#include "fake_runtime.h"
#include "protocol_test_util.h"
#include "rmcast/receiver.h"
#include "rmcast/sender.h"

namespace rmc {
namespace {

using rmcast::Header;
using rmcast::PacketType;
using rmcast::ProtocolKind;
using test::pattern;
using test::ProtocolHarness;

// --- binary tree -------------------------------------------------------------

TEST(BinaryTreeLinks, HeapShape) {
  auto root = rmcast::binary_tree_links(0, 7);
  EXPECT_FALSE(root.has_parent);
  EXPECT_EQ(root.children, (std::vector<std::size_t>{1, 2}));

  auto mid = rmcast::binary_tree_links(2, 7);
  EXPECT_TRUE(mid.has_parent);
  EXPECT_EQ(mid.parent, 0u);
  EXPECT_EQ(mid.children, (std::vector<std::size_t>{5, 6}));

  auto leaf = rmcast::binary_tree_links(5, 7);
  EXPECT_EQ(leaf.parent, 2u);
  EXPECT_TRUE(leaf.children.empty());

  // Ragged bottom level: node 3 of 5 nodes has no children.
  auto edge = rmcast::binary_tree_links(1, 5);
  EXPECT_EQ(edge.children, (std::vector<std::size_t>{3, 4}));
  EXPECT_TRUE(rmcast::binary_tree_links(3, 5).children.empty());
}

TEST(BinaryTreeLinks, ParentChildMutual) {
  const std::size_t n = 13;
  for (std::size_t id = 0; id < n; ++id) {
    auto links = rmcast::binary_tree_links(id, n);
    for (std::size_t child : links.children) {
      auto child_links = rmcast::binary_tree_links(child, n);
      EXPECT_TRUE(child_links.has_parent);
      EXPECT_EQ(child_links.parent, id);
    }
    if (links.has_parent) {
      auto parent_links = rmcast::binary_tree_links(links.parent, n);
      EXPECT_NE(std::find(parent_links.children.begin(), parent_links.children.end(), id),
                parent_links.children.end());
    }
  }
}

rmcast::ProtocolConfig btree_config() {
  rmcast::ProtocolConfig c;
  c.kind = ProtocolKind::kBinaryTree;
  c.packet_size = 4000;
  c.window_size = 16;
  return c;
}

TEST(BinaryTree, DeliversExactPayload) {
  ProtocolHarness h(7, btree_config());
  Buffer message = pattern(120'000);
  ASSERT_TRUE(h.send_and_run(message));
  h.expect_all_delivered({message});
}

TEST(BinaryTree, SenderHearsOnlyTheRoot) {
  ProtocolHarness h(7, btree_config());
  ASSERT_TRUE(h.send_and_run(pattern(40'000)));  // 10 packets
  // Only receiver 0 reports to the sender: one cumulative ACK per packet.
  EXPECT_EQ(h.sender().stats().acks_received, 10u);
  EXPECT_EQ(h.receiver(0).stats().acks_sent, 10u);
  // Interior nodes aggregate two children each; leaves relay nothing.
  EXPECT_GT(h.receiver(0).stats().relayed_acks_received, 0u);
  EXPECT_EQ(h.receiver(5).stats().relayed_acks_received, 0u);
  EXPECT_EQ(h.receiver(6).stats().relayed_acks_received, 0u);
}

TEST(BinaryTree, SurvivesLoss) {
  inet::ClusterParams cluster;
  cluster.link.frame_error_rate = 0.01;
  cluster.seed = 3;
  ProtocolHarness h(7, btree_config(), cluster);
  Buffer message = pattern(150'000);
  ASSERT_TRUE(h.send_and_run(message, sim::seconds(60.0)));
  h.expect_all_delivered({message});
}

TEST(BinaryTree, SingleReceiverDegeneratesCleanly) {
  ProtocolHarness h(1, btree_config());
  Buffer message = pattern(9000);
  ASSERT_TRUE(h.send_and_run(message));
  h.expect_all_delivered({message});
}

TEST(BinaryTreeUnit, InteriorNodeAggregatesBothChildren) {
  using test::fake_membership;
  using test::FakeRuntime;
  using test::FakeSocket;

  // 7 receivers: node 1 has parent 0 and children 3, 4.
  rmcast::GroupMembership m = fake_membership(7);
  FakeRuntime runtime;
  FakeSocket data(m.group);
  FakeSocket control(m.receiver_control[1]);
  rmcast::ProtocolConfig config;
  config.kind = ProtocolKind::kBinaryTree;
  config.packet_size = 100;
  config.window_size = 8;
  rmcast::MulticastReceiver receiver(runtime, data, control, m, 1, config);

  // Alloc: must wait for BOTH children before reporting to the parent.
  Writer w;
  rmcast::write_header(w, Header{PacketType::kAllocReq, 0, rmcast::kSenderNodeId, 1, 0});
  rmcast::write_alloc_request(w, rmcast::AllocRequest{200, 100, 2});
  data.inject(m.sender_control, w.take());
  EXPECT_TRUE(control.sent().empty());
  data.inject(m.receiver_control[3],
              rmcast::make_control_packet(Header{PacketType::kAllocRsp, 0, 3, 1, 0}));
  EXPECT_TRUE(control.sent().empty());  // one child is not enough
  data.inject(m.receiver_control[4],
              rmcast::make_control_packet(Header{PacketType::kAllocRsp, 0, 4, 1, 0}));
  auto sent = control.sent_headers();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kAllocRsp);
  EXPECT_EQ(control.sent()[0].dst, m.receiver_control[0]);  // to the parent

  // Data: the upstream cum is min(self, child3, child4).
  control.clear_sent();
  Writer d;
  rmcast::write_header(d, Header{PacketType::kData, 0, rmcast::kSenderNodeId, 1, 0});
  Buffer body(100, 1);
  d.bytes(BytesView(body.data(), body.size()));
  data.inject(m.sender_control, d.take());
  EXPECT_TRUE(control.sent().empty());  // children have not confirmed
  data.inject(m.receiver_control[3],
              rmcast::make_control_packet(Header{PacketType::kAck, 0, 3, 1, 1}));
  EXPECT_TRUE(control.sent().empty());  // still waiting on child 4
  data.inject(m.receiver_control[4],
              rmcast::make_control_packet(Header{PacketType::kAck, 0, 4, 1, 1}));
  sent = control.sent_headers();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kAck);
  EXPECT_EQ(sent[0].seq, 1u);
}

// --- multicast NAK suppression ----------------------------------------------

TEST(NakSuppression, BackoffDelaysAndCancelsOnForeignNak) {
  using test::fake_membership;
  using test::FakeRuntime;
  using test::FakeSocket;

  rmcast::GroupMembership m = fake_membership(4);
  FakeRuntime runtime;
  FakeSocket data(m.group);
  FakeSocket control(m.receiver_control[0]);
  rmcast::ProtocolConfig config;
  config.kind = ProtocolKind::kNakPolling;
  config.packet_size = 100;
  config.window_size = 8;
  config.poll_interval = 4;
  config.multicast_nak_suppression = true;
  config.nak_suppress_delay = sim::milliseconds(2);
  rmcast::MulticastReceiver receiver(runtime, data, control, m, 0, config);

  auto inject_data = [&](std::uint32_t seq) {
    Writer w;
    rmcast::write_header(w, Header{PacketType::kData, 0, rmcast::kSenderNodeId, 1, seq});
    Buffer body(100, 1);
    w.bytes(BytesView(body.data(), body.size()));
    data.inject(m.sender_control, w.take());
  };
  {
    Writer w;
    rmcast::write_header(w,
                         Header{PacketType::kAllocReq, 0, rmcast::kSenderNodeId, 1, 0});
    rmcast::write_alloc_request(w, rmcast::AllocRequest{800, 100, 8});
    data.inject(m.sender_control, w.take());
  }
  control.clear_sent();

  // Gap: no NAK leaves immediately (random backoff).
  inject_data(2);
  EXPECT_TRUE(control.sent().empty());

  // A peer's NAK for the same gap arrives during the backoff: ours is
  // suppressed for good.
  data.inject(m.receiver_control[2],
              rmcast::make_control_packet(Header{PacketType::kNak, 0, 2, 1, 0}));
  runtime.advance(sim::milliseconds(5));
  EXPECT_TRUE(control.sent().empty());
  EXPECT_GT(receiver.stats().naks_suppressed, 0u);
}

TEST(NakSuppression, BackoffExpiresIntoDualDestinationNak) {
  using test::fake_membership;
  using test::FakeRuntime;
  using test::FakeSocket;

  rmcast::GroupMembership m = fake_membership(4);
  FakeRuntime runtime;
  FakeSocket data(m.group);
  FakeSocket control(m.receiver_control[1]);
  rmcast::ProtocolConfig config;
  config.kind = ProtocolKind::kNakPolling;
  config.packet_size = 100;
  config.window_size = 8;
  config.poll_interval = 4;
  config.multicast_nak_suppression = true;
  rmcast::MulticastReceiver receiver(runtime, data, control, m, 1, config);

  Writer w;
  rmcast::write_header(w, Header{PacketType::kAllocReq, 0, rmcast::kSenderNodeId, 1, 0});
  rmcast::write_alloc_request(w, rmcast::AllocRequest{800, 100, 8});
  data.inject(m.sender_control, w.take());
  control.clear_sent();

  Writer d;
  rmcast::write_header(d, Header{PacketType::kData, 0, rmcast::kSenderNodeId, 1, 3});
  Buffer body(100, 1);
  d.bytes(BytesView(body.data(), body.size()));
  data.inject(m.sender_control, d.take());

  runtime.advance(config.nak_suppress_delay + 1);
  // One NAK to the sender (unicast) and one to the group (multicast).
  ASSERT_EQ(control.sent().size(), 2u);
  EXPECT_EQ(control.sent()[0].dst, m.sender_control);
  EXPECT_EQ(control.sent()[1].dst, m.group);
  EXPECT_EQ(control.header_of(0).type, PacketType::kNak);
  EXPECT_EQ(control.header_of(0).seq, 0u);
}

TEST(NakSuppression, EndToEndUnderLossReducesNakTraffic) {
  auto run = [](bool suppression) {
    auto config = test::config_for(ProtocolKind::kNakPolling);
    config.multicast_nak_suppression = suppression;
    inet::ClusterParams cluster;
    cluster.link.frame_error_rate = 0.01;
    cluster.seed = 17;
    ProtocolHarness h(10, config, cluster);
    Buffer message = pattern(300'000);
    EXPECT_TRUE(h.send_and_run(message, sim::seconds(60.0)));
    h.expect_all_delivered({message});
    std::uint64_t naks = 0;
    for (std::size_t i = 0; i < 10; ++i) naks += h.receiver(i).stats().naks_sent;
    return naks;
  };
  std::uint64_t without = run(false);
  std::uint64_t with = run(true);
  // Multicast data loss hits one receiver per frame here (drops are on
  // distinct egress ports), so the savings are modest; the invariant is
  // that suppression never increases unicast NAK load on the sender.
  EXPECT_LE(with, without);
}

// --- unicast NAK repairs ------------------------------------------------------

TEST(UnicastRepair, SenderAnswersTheNakerOnly) {
  using test::fake_membership;
  using test::FakeRuntime;
  using test::FakeSocket;

  rmcast::GroupMembership m = fake_membership(4);
  FakeRuntime runtime;
  FakeSocket socket(m.sender_control);
  rmcast::ProtocolConfig config;
  config.kind = ProtocolKind::kAck;
  config.packet_size = 100;
  config.window_size = 4;
  config.unicast_nak_retransmissions = true;
  rmcast::MulticastSender sender(runtime, socket, m, config);

  Buffer message(400, 0x42);
  sender.send(BytesView(message.data(), message.size()),
              [](const rmcast::SendOutcome&) {});
  for (std::uint16_t node = 0; node < 4; ++node) {
    socket.inject(m.receiver_control[node],
                  rmcast::make_control_packet(
                      Header{PacketType::kAllocRsp, 0, node, 1, 0}));
  }
  std::size_t before = socket.sent().size();
  runtime.advance(config.suppress_interval + 1);
  socket.inject(m.receiver_control[2],
                rmcast::make_control_packet(Header{PacketType::kNak, 0, 2, 1, 1}));
  ASSERT_GT(socket.sent().size(), before);
  for (std::size_t i = before; i < socket.sent().size(); ++i) {
    EXPECT_EQ(socket.sent()[i].dst, m.receiver_control[2]) << "packet " << i;
    EXPECT_NE(socket.header_of(i).flags & rmcast::kFlagRetrans, 0);
  }
}

TEST(UnicastRepair, EndToEndUnderLoss) {
  auto config = test::config_for(ProtocolKind::kAck);
  config.unicast_nak_retransmissions = true;
  inet::ClusterParams cluster;
  cluster.link.frame_error_rate = 0.01;
  cluster.seed = 23;
  ProtocolHarness h(6, config, cluster);
  Buffer message = pattern(200'000);
  ASSERT_TRUE(h.send_and_run(message, sim::seconds(60.0)));
  h.expect_all_delivered({message});
}

TEST(UnicastRepair, SparesUnaffectedReceiversTheDuplicates) {
  auto run = [](bool unicast) {
    auto config = test::config_for(ProtocolKind::kAck);
    config.unicast_nak_retransmissions = unicast;
    inet::ClusterParams cluster;
    cluster.link.frame_error_rate = 0.01;
    cluster.seed = 29;
    ProtocolHarness h(8, config, cluster);
    Buffer message = pattern(300'000);
    EXPECT_TRUE(h.send_and_run(message, sim::seconds(60.0)));
    std::uint64_t dups = 0;
    for (std::size_t i = 0; i < 8; ++i) dups += h.receiver(i).stats().duplicates;
    return dups;
  };
  // Multicast repairs reach everyone including the 7 receivers that
  // already hold the packet; unicast repairs do not.
  EXPECT_LT(run(true), run(false));
}

// --- SRM-style peer repair ------------------------------------------------------

TEST(PeerRepair, RequiresSuppressionAndSelectiveRepeat) {
  rmcast::ProtocolConfig config;
  config.peer_repair = true;
  config.multicast_nak_suppression = false;
  config.selective_repeat = true;
  EXPECT_NE(rmcast::validate(config, 5), "");
  config.multicast_nak_suppression = true;
  config.selective_repeat = false;  // GBN discards what peers cannot refill
  EXPECT_NE(rmcast::validate(config, 5), "");
  config.selective_repeat = true;
  EXPECT_NE(rmcast::validate(config, 5), "");  // still needs the receiver timer
  config.receiver_driven_timeouts = true;
  EXPECT_EQ(rmcast::validate(config, 5), "");
}

class PeerRepairUnit : public ::testing::Test {
 protected:
  PeerRepairUnit()
      : membership_(test::fake_membership(4)),
        data_(membership_.group),
        control_(membership_.receiver_control[0]) {
    config_.kind = ProtocolKind::kNakPolling;
    config_.packet_size = 100;
    config_.window_size = 8;
    config_.poll_interval = 4;
    config_.multicast_nak_suppression = true;
    config_.selective_repeat = true;
    config_.receiver_driven_timeouts = true;
    config_.peer_repair = true;
    config_.repair_delay = sim::milliseconds(2);
    receiver_ = std::make_unique<rmcast::MulticastReceiver>(runtime_, data_, control_,
                                                            membership_, 0, config_);
    // Session of 3 packets; this receiver holds packets 0 and 1.
    Writer w;
    rmcast::write_header(w,
                         Header{PacketType::kAllocReq, 0, rmcast::kSenderNodeId, 1, 0});
    rmcast::write_alloc_request(w, rmcast::AllocRequest{300, 100, 3});
    data_.inject(membership_.sender_control, w.take());
    for (std::uint32_t seq = 0; seq < 2; ++seq) {
      Writer d;
      rmcast::write_header(d, Header{PacketType::kData, 0, rmcast::kSenderNodeId, 1, seq});
      Buffer body(100, static_cast<std::uint8_t>(seq + 1));
      d.bytes(BytesView(body.data(), body.size()));
      data_.inject(membership_.sender_control, d.take());
    }
    control_.clear_sent();
  }

  void inject_foreign_nak(std::uint32_t seq) {
    data_.inject(membership_.receiver_control[2],
                 rmcast::make_control_packet(Header{PacketType::kNak, 0, 2, 1, seq}));
  }

  rmcast::GroupMembership membership_;
  test::FakeRuntime runtime_;
  test::FakeSocket data_;
  test::FakeSocket control_;
  rmcast::ProtocolConfig config_;
  std::unique_ptr<rmcast::MulticastReceiver> receiver_;
};

TEST_F(PeerRepairUnit, RepairsHeldPacketAfterBackoff) {
  inject_foreign_nak(0);
  EXPECT_TRUE(control_.sent().empty());  // backoff first
  runtime_.advance(config_.repair_delay + 1);
  auto sent = control_.sent_headers();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kData);
  EXPECT_EQ(sent[0].seq, 0u);
  EXPECT_NE(sent[0].flags & rmcast::kFlagRetrans, 0);
  EXPECT_EQ(sent[0].node_id, 0);  // repair names its true origin
  EXPECT_EQ(control_.sent()[0].dst, membership_.group);
  // Payload is the original packet's bytes.
  EXPECT_EQ(control_.sent()[0].payload.size(), rmcast::kHeaderBytes + 100);
  EXPECT_EQ(control_.sent()[0].payload[rmcast::kHeaderBytes], 1);
  EXPECT_EQ(receiver_->stats().repairs_sent, 1u);
}

TEST_F(PeerRepairUnit, SomeoneElsesRepairCancelsOurs) {
  inject_foreign_nak(0);
  // Another peer's repair (a retransmitted duplicate) arrives during the
  // backoff: ours must be suppressed.
  Writer d;
  rmcast::write_header(d, Header{PacketType::kData, rmcast::kFlagRetrans, 3, 1, 0});
  Buffer body(100, 1);
  d.bytes(BytesView(body.data(), body.size()));
  data_.inject(membership_.receiver_control[3], d.take());
  runtime_.advance(config_.repair_delay + 1);
  for (const auto& h : control_.sent_headers()) {
    EXPECT_NE(h.type, PacketType::kData);
  }
  EXPECT_EQ(receiver_->stats().repairs_sent, 0u);
  EXPECT_EQ(receiver_->stats().repairs_suppressed, 1u);
}

TEST_F(PeerRepairUnit, DoesNotRepairWhatItLacks) {
  inject_foreign_nak(2);  // we only hold 0 and 1
  runtime_.advance(config_.repair_delay + 1);
  for (const auto& h : control_.sent_headers()) {
    EXPECT_NE(h.type, PacketType::kData);
  }
}

TEST(PeerRepair, EndToEndRelievesTheSender) {
  auto run = [](bool peer_repair) {
    auto config = test::config_for(ProtocolKind::kNakPolling);
    config.multicast_nak_suppression = true;
    config.selective_repeat = true;
    config.receiver_driven_timeouts = true;
    config.peer_repair = peer_repair;
    inet::ClusterParams cluster;
    cluster.link.frame_error_rate = 0.01;
    cluster.seed = 37;
    ProtocolHarness h(10, config, cluster);
    Buffer message = pattern(400'000);
    EXPECT_TRUE(h.send_and_run(message, sim::seconds(120.0)));
    h.expect_all_delivered({message});
    std::uint64_t repairs = 0;
    for (std::size_t i = 0; i < 10; ++i) repairs += h.receiver(i).stats().repairs_sent;
    return std::pair<std::uint64_t, std::uint64_t>(h.sender().stats().retransmissions,
                                                   repairs);
  };
  auto [base_retx, base_repairs] = run(false);
  auto [srm_retx, srm_repairs] = run(true);
  EXPECT_EQ(base_repairs, 0u);
  EXPECT_GT(srm_repairs, 0u);      // peers actually repaired
  // The sender retransmits less: data gaps are now healed by peers. It
  // does not go to zero — with NAKs diverted to the group the sender is
  // deaf, so lost *acknowledgments* (which no peer can repair) still cost
  // it timer-driven re-poll bursts.
  EXPECT_LT(srm_retx, base_retx);
}

// --- receiver-driven timeouts ---------------------------------------------------

TEST(ReceiverDriven, SilenceTriggersNak) {
  using test::fake_membership;
  using test::FakeRuntime;
  using test::FakeSocket;

  rmcast::GroupMembership m = fake_membership(3);
  FakeRuntime runtime;
  FakeSocket data(m.group);
  FakeSocket control(m.receiver_control[0]);
  rmcast::ProtocolConfig config;
  config.kind = ProtocolKind::kNakPolling;
  config.packet_size = 100;
  config.window_size = 8;
  config.poll_interval = 4;
  config.receiver_driven_timeouts = true;
  config.receiver_timeout = sim::milliseconds(30);
  rmcast::MulticastReceiver receiver(runtime, data, control, m, 0, config);

  Writer w;
  rmcast::write_header(w, Header{PacketType::kAllocReq, 0, rmcast::kSenderNodeId, 1, 0});
  rmcast::write_alloc_request(w, rmcast::AllocRequest{300, 100, 3});
  data.inject(m.sender_control, w.take());
  Writer d;
  rmcast::write_header(d, Header{PacketType::kData, 0, rmcast::kSenderNodeId, 1, 0});
  Buffer body(100, 1);
  d.bytes(BytesView(body.data(), body.size()));
  data.inject(m.sender_control, d.take());
  control.clear_sent();

  // The rest of the message never arrives; after the inactivity timeout
  // the receiver asks for it instead of waiting on the sender's timer.
  runtime.advance(sim::milliseconds(31));
  auto sent = control.sent_headers();
  ASSERT_FALSE(sent.empty());
  EXPECT_EQ(sent[0].type, PacketType::kNak);
  EXPECT_EQ(sent[0].seq, 1u);

  // And it keeps nudging while still incomplete.
  runtime.advance(sim::milliseconds(31));
  EXPECT_GT(control.sent_headers().size(), sent.size());
  EXPECT_GT(receiver.stats().naks_sent, 0u);
}

TEST(ReceiverDriven, QuietAfterDelivery) {
  using test::fake_membership;
  using test::FakeRuntime;
  using test::FakeSocket;

  rmcast::GroupMembership m = fake_membership(3);
  FakeRuntime runtime;
  FakeSocket data(m.group);
  FakeSocket control(m.receiver_control[0]);
  rmcast::ProtocolConfig config;
  config.kind = ProtocolKind::kAck;
  config.packet_size = 100;
  config.window_size = 8;
  config.receiver_driven_timeouts = true;
  rmcast::MulticastReceiver receiver(runtime, data, control, m, 0, config);

  Writer w;
  rmcast::write_header(w, Header{PacketType::kAllocReq, 0, rmcast::kSenderNodeId, 1, 0});
  rmcast::write_alloc_request(w, rmcast::AllocRequest{100, 100, 1});
  data.inject(m.sender_control, w.take());
  Writer d;
  rmcast::write_header(d, Header{PacketType::kData, rmcast::kFlagLast,
                                 rmcast::kSenderNodeId, 1, 0});
  Buffer body(100, 1);
  d.bytes(BytesView(body.data(), body.size()));
  data.inject(m.sender_control, d.take());
  control.clear_sent();

  runtime.advance(sim::seconds(1.0));
  EXPECT_TRUE(control.sent().empty());  // complete: the timer is disarmed
  EXPECT_EQ(runtime.pending_timers(), 0u);
}

TEST(ReceiverDriven, EndToEndUnderHeavyTailLoss) {
  auto config = test::config_for(ProtocolKind::kNakPolling);
  config.receiver_driven_timeouts = true;
  inet::ClusterParams cluster;
  cluster.link.frame_error_rate = 0.05;
  cluster.seed = 31;
  ProtocolHarness h(4, config, cluster);
  Buffer message = pattern(100'000);
  ASSERT_TRUE(h.send_and_run(message, sim::seconds(60.0)));
  h.expect_all_delivered({message});
}

// --- rate-based flow control ---------------------------------------------------

TEST(RateControl, PacesFirstTransmissions) {
  using test::fake_membership;
  using test::FakeRuntime;
  using test::FakeSocket;

  rmcast::GroupMembership m = fake_membership(2);
  FakeRuntime runtime;
  FakeSocket socket(m.sender_control);
  rmcast::ProtocolConfig config;
  config.kind = ProtocolKind::kAck;
  config.packet_size = 1000;
  config.window_size = 16;
  config.rate_limit_bps = 8e6;  // 1000+12 bytes ~= 1.012 ms per packet
  rmcast::MulticastSender sender(runtime, socket, m, config);

  Buffer message(4000, 0x11);
  sender.send(BytesView(message.data(), message.size()),
              [](const rmcast::SendOutcome&) {});
  for (std::uint16_t node = 0; node < 2; ++node) {
    socket.inject(m.receiver_control[node],
                  rmcast::make_control_packet(
                      Header{PacketType::kAllocRsp, 0, node, 1, 0}));
  }
  auto count_data = [&] {
    std::size_t n = 0;
    for (const auto& h : socket.sent_headers()) {
      if (h.type == PacketType::kData) ++n;
    }
    return n;
  };
  // Despite a 16-packet window, only the first packet leaves immediately.
  EXPECT_EQ(count_data(), 1u);
  runtime.advance(sim::microseconds(1100));
  EXPECT_EQ(count_data(), 2u);
  runtime.advance(sim::milliseconds(3));
  EXPECT_EQ(count_data(), 4u);
}

TEST(RateControl, EndToEndThroughputIsCapped) {
  auto config = test::config_for(ProtocolKind::kNakPolling);
  config.rate_limit_bps = 20e6;
  ProtocolHarness h(5, config);
  Buffer message = pattern(500'000);
  ASSERT_TRUE(h.send_and_run(message, sim::seconds(60.0)));
  h.expect_all_delivered({message});
  double seconds = sim::to_seconds(h.bed().simulator().now());
  double bps = 500'000 * 8.0 / seconds;
  EXPECT_LT(bps, 20e6);
  EXPECT_GT(bps, 12e6);  // but not wildly below the cap
}

TEST(RateControl, ZeroMeansWindowOnly) {
  auto config = test::config_for(ProtocolKind::kAck);
  config.rate_limit_bps = 0.0;
  ProtocolHarness h(4, config);
  Buffer message = pattern(100'000);
  ASSERT_TRUE(h.send_and_run(message));
  h.expect_all_delivered({message});
}

}  // namespace
}  // namespace rmc
