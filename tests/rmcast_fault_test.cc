// Fault injection and graceful degradation, end to end.
//
// The crash matrix is the core contract: for every protocol family, a
// receiver that fail-stops mid-transfer is evicted after
// max_retransmit_rounds of no progress, send() still completes, the
// DeliveryReport names exactly the dead receiver, every live receiver
// delivers a byte-exact copy, and the ring/tree structures verifiably
// re-form over the survivors. Around it: pause/resume and link flaps must
// NOT trip the failure detector (they heal through ordinary
// retransmission), and the Gilbert–Elliott burst channel must both obey
// its stationary loss rate and be survivable.
#include <gtest/gtest.h>

#include "protocol_test_util.h"
#include "sim/fault.h"

namespace rmc::rmcast {
namespace {

constexpr std::size_t kReceivers = 6;
constexpr std::size_t kCrashed = 4;

ProtocolConfig fault_config(ProtocolKind kind) {
  ProtocolConfig c = test::config_for(kind);  // 4000B packets, window 16, H=3
  c.max_retransmit_rounds = 3;
  c.rto = sim::milliseconds(20);
  c.max_rto = sim::milliseconds(80);
  return c;
}

// A ProtocolHarness run with a fault plan applied and the SendOutcome kept.
struct FaultRun {
  explicit FaultRun(ProtocolConfig config) : h(kReceivers, config) {}

  bool go(const sim::FaultPlan& plan, std::size_t message_bytes = 240'000,
          sim::Time limit = sim::seconds(30.0)) {
    h.bed().cluster().apply_fault_plan(plan);
    message = test::pattern(message_bytes);
    bool done = false;
    h.sender().send(BytesView(message.data(), message.size()),
                    [&](const SendOutcome& o) {
                      done = true;
                      outcome = o;
                    });
    h.run_until_done(done, limit);
    return done;
  }

  test::ProtocolHarness h;
  Buffer message;
  SendOutcome outcome;
};

class CrashMatrixTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(CrashMatrixTest, CrashedReceiverEvictedAndOthersDeliver) {
  const ProtocolKind kind = GetParam();
  FaultRun run(fault_config(kind));
  sim::FaultPlan plan;
  plan.crash(kCrashed, sim::milliseconds(5));  // mid data phase

  ASSERT_TRUE(run.go(plan)) << protocol_name(kind) << ": send() never completed";

  // The report names exactly the crashed receiver.
  ASSERT_EQ(run.outcome.receivers.size(), kReceivers);
  for (std::size_t i = 0; i < kReceivers; ++i) {
    EXPECT_EQ(run.outcome.receivers[i].delivered(), i != kCrashed)
        << protocol_name(kind) << " receiver " << i;
  }
  EXPECT_EQ(run.outcome.n_evicted(), 1u);
  EXPECT_EQ(run.h.sender().stats().receivers_evicted, 1u);
  EXPECT_TRUE(run.h.sender().is_evicted(kCrashed));
  EXPECT_GT(run.h.sender().stats().rto_backoffs, 0u);

  // Every live receiver delivered a byte-exact copy; the dead one none.
  for (std::size_t i = 0; i < kReceivers; ++i) {
    if (i == kCrashed) {
      EXPECT_TRUE(run.h.deliveries(i).empty());
      continue;
    }
    ASSERT_EQ(run.h.deliveries(i).size(), 1u)
        << protocol_name(kind) << " receiver " << i;
    EXPECT_EQ(run.h.deliveries(i)[0].message, run.message)
        << protocol_name(kind) << " receiver " << i;
  }

  // The sender's tracked roster no longer contains the dead node.
  for (std::size_t node : run.h.sender().unit_nodes()) {
    EXPECT_NE(node, kCrashed);
  }

  // Survivors agree the node is gone and re-formed their structure.
  if (kind == ProtocolKind::kRing || is_tree_protocol(kind)) {
    for (std::size_t i = 0; i < kReceivers; ++i) {
      if (i == kCrashed) continue;
      const auto& live = run.h.receiver(i).live();
      EXPECT_EQ(live.size(), kReceivers - 1) << "receiver " << i;
      for (std::size_t node : live) EXPECT_NE(node, kCrashed);
      EXPECT_GT(run.h.receiver(i).stats().evict_notices_received, 0u);
      EXPECT_GT(run.h.receiver(i).stats().structure_reforms, 0u);
    }
  }

  if (is_tree_protocol(kind)) {
    // Node 4 is interior in both trees (6 nodes, H=3: chains {0,1,2},
    // {3,4,5}; binary heap: 4 is a child of 1), so its parent must have
    // reported it and the sender must have heard.
    EXPECT_GT(run.h.sender().stats().suspect_reports_received, 0u);
    const std::size_t parent = kind == ProtocolKind::kFlatTree ? 3 : 1;
    EXPECT_GT(run.h.receiver(parent).stats().suspects_sent, 0u);
  }
  if (kind == ProtocolKind::kFlatTree) {
    // Chain two spliced: 3 stays head, 5 promoted into 4's slot.
    EXPECT_EQ(run.h.receiver(3).links().children, (std::vector<std::size_t>{5}));
    ASSERT_TRUE(run.h.receiver(5).links().has_parent);
    EXPECT_EQ(run.h.receiver(5).links().parent, 3u);
    EXPECT_EQ(run.h.sender().unit_nodes(), (std::vector<std::size_t>{0, 3}));
  }
  if (kind == ProtocolKind::kBinaryTree) {
    // Heap re-indexed over {0,1,2,3,5}: 5 takes rank 4, child of 1.
    ASSERT_TRUE(run.h.receiver(5).links().has_parent);
    EXPECT_EQ(run.h.receiver(5).links().parent, 1u);
    EXPECT_EQ(run.h.sender().unit_nodes(), (std::vector<std::size_t>{0}));
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, CrashMatrixTest,
                         ::testing::Values(ProtocolKind::kAck,
                                           ProtocolKind::kNakPolling,
                                           ProtocolKind::kRing,
                                           ProtocolKind::kFlatTree,
                                           ProtocolKind::kBinaryTree),
                         [](const auto& info) {
                           std::string name = protocol_name(info.param);
                           std::erase_if(name, [](char c) { return !std::isalnum(c); });
                           return name;
                         });

TEST(Fault, CrashDuringAllocPhaseEvictsToo) {
  // Dead before the handshake ever reaches it: the alloc retry loop, not
  // the data-phase stall detector, must give up on it.
  FaultRun run(fault_config(ProtocolKind::kAck));
  sim::FaultPlan plan;
  plan.crash(kCrashed, sim::microseconds(1));
  ASSERT_TRUE(run.go(plan, 40'000));
  EXPECT_FALSE(run.outcome.receivers[kCrashed].delivered());
  EXPECT_EQ(run.outcome.receivers[kCrashed].acked_packets, 0u);
  EXPECT_EQ(run.outcome.n_evicted(), 1u);
}

TEST(Fault, EvictionDisabledMeansWaitForever) {
  // The paper's fault-free semantics are the default: a crashed receiver
  // stalls the send indefinitely rather than being given up on.
  ProtocolConfig config = test::config_for(ProtocolKind::kAck);
  ASSERT_EQ(config.max_retransmit_rounds, 0u);
  FaultRun run(config);
  sim::FaultPlan plan;
  plan.crash(kCrashed, sim::milliseconds(5));
  EXPECT_FALSE(run.go(plan, 240'000, sim::seconds(5.0)));
  EXPECT_EQ(run.h.sender().stats().receivers_evicted, 0u);
}

TEST(Fault, PauseAndResumeIsNotEvicted) {
  // A descheduled process that comes back inside the eviction budget heals
  // through ordinary retransmission — the detector must not false-trigger.
  FaultRun run(fault_config(ProtocolKind::kAck));
  sim::FaultPlan plan;
  plan.pause(2, sim::milliseconds(4)).resume(2, sim::milliseconds(30));
  ASSERT_TRUE(run.go(plan));
  EXPECT_TRUE(run.outcome.all_delivered());
  EXPECT_EQ(run.h.sender().stats().receivers_evicted, 0u);
  ASSERT_EQ(run.h.deliveries(2).size(), 1u);
  EXPECT_EQ(run.h.deliveries(2)[0].message, run.message);
}

TEST(Fault, FlappingLinkHealsWithoutEviction) {
  FaultRun run(fault_config(ProtocolKind::kNakPolling));
  sim::FaultPlan plan;
  plan.flap_link(1, sim::milliseconds(3), sim::milliseconds(24),
                 sim::milliseconds(3));
  ASSERT_TRUE(run.go(plan));
  EXPECT_TRUE(run.outcome.all_delivered());
  EXPECT_EQ(run.h.sender().stats().receivers_evicted, 0u);
  ASSERT_EQ(run.h.deliveries(1).size(), 1u);
  EXPECT_EQ(run.h.deliveries(1)[0].message, run.message);
}

TEST(Fault, PermanentLinkDownEvictsLikeACrash) {
  FaultRun run(fault_config(ProtocolKind::kAck));
  sim::FaultPlan plan;
  plan.link_down(kCrashed, sim::milliseconds(5));
  ASSERT_TRUE(run.go(plan));
  EXPECT_EQ(run.outcome.n_evicted(), 1u);
  EXPECT_FALSE(run.outcome.receivers[kCrashed].delivered());
}

TEST(Fault, GilbertElliottStationaryLossMatchesSimulation) {
  sim::GilbertElliottParams ge;
  ge.p_good_to_bad = 0.02;
  ge.p_bad_to_good = 0.25;
  ge.loss_good = 0.0;
  ge.loss_bad = 1.0;
  // Stationary P(bad) = p_gb / (p_gb + p_bg).
  EXPECT_NEAR(ge.stationary_loss(), 0.02 / 0.27, 1e-12);

  sim::GilbertElliottModel model(ge);
  Rng rng(7);
  const int kFrames = 200'000;
  int dropped = 0;
  int current_burst = 0, max_burst = 0;
  for (int i = 0; i < kFrames; ++i) {
    if (model.drop(rng)) {
      ++dropped;
      max_burst = std::max(max_burst, ++current_burst);
    } else {
      current_burst = 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(dropped) / kFrames, ge.stationary_loss(), 0.01);
  // Mean burst length 1/p_bad_to_good = 4: losses must actually cluster.
  EXPECT_GE(max_burst, 4);
}

TEST(Fault, TransferSurvivesBurstLossDuplicationAndReordering) {
  ProtocolConfig config = test::config_for(ProtocolKind::kNakPolling);
  inet::ClusterParams cluster;
  cluster.link.faults.burst.p_good_to_bad = 0.005;
  cluster.link.faults.burst.p_bad_to_good = 0.3;
  cluster.link.faults.duplicate_rate = 0.01;
  cluster.link.faults.reorder_rate = 0.01;

  test::ProtocolHarness h(kReceivers, config, cluster);
  Buffer message = test::pattern(240'000);
  ASSERT_TRUE(h.send_and_run(message, sim::seconds(60.0)));
  h.expect_all_delivered({message});

  // The impairments actually fired.
  std::uint64_t bursts = 0, dups = 0, reorders = 0;
  for (std::size_t i = 0; i < h.bed().cluster().size(); ++i) {
    const net::TxPort* nic = h.bed().cluster().host_nic(i);
    ASSERT_NE(nic, nullptr);
    bursts += nic->stats().burst_drops;
    dups += nic->stats().duplicated_frames;
    reorders += nic->stats().reordered_frames;
  }
  EXPECT_GT(bursts, 0u);
  EXPECT_GT(dups, 0u);
  EXPECT_GT(reorders, 0u);
}

TEST(Fault, SequentialSendAfterEvictionStartsFromFullRoster) {
  // Eviction is per-send state: the next message tries the whole roster
  // again (the process may have been restarted).
  FaultRun run(fault_config(ProtocolKind::kAck));
  sim::FaultPlan plan;
  plan.crash(kCrashed, sim::milliseconds(5));
  ASSERT_TRUE(run.go(plan, 120'000));
  ASSERT_EQ(run.outcome.n_evicted(), 1u);

  Buffer second = test::pattern(40'000);
  bool done = false;
  SendOutcome outcome2;
  run.h.sender().send(BytesView(second.data(), second.size()),
                      [&](const SendOutcome& o) {
                        done = true;
                        outcome2 = o;
                      });
  sim::Time limit = run.h.bed().simulator().now() + sim::seconds(10.0);
  run.h.run_until_done(done, limit);
  ASSERT_TRUE(done);
  // Still-crashed node gets evicted afresh; the roster was full again.
  ASSERT_EQ(outcome2.receivers.size(), kReceivers);
  EXPECT_EQ(outcome2.n_evicted(), 1u);
  EXPECT_FALSE(outcome2.receivers[kCrashed].delivered());
  EXPECT_EQ(run.h.sender().stats().receivers_evicted, 2u);  // cumulative
}

}  // namespace
}  // namespace rmc::rmcast
