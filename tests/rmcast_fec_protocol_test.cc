// End-to-end behaviour of the erasure-coded protocols: parity flows on a
// clean wire without triggering repairs, losses within the MDS bound are
// decoded locally with zero retransmission traffic, and only losses the
// parity cannot cover fall back to GROUP_NAK selective repeat.
#include <gtest/gtest.h>

#include "protocol_test_util.h"

namespace rmc {
namespace {

using rmcast::ProtocolKind;
using test::pattern;
using test::ProtocolHarness;

rmcast::ProtocolConfig ec_config(ProtocolKind kind) {
  rmcast::ProtocolConfig c;
  c.kind = kind;
  c.packet_size = 4000;
  c.fec.k = kind == ProtocolKind::kEcXor ? 8 : 16;
  c.fec.m = kind == ProtocolKind::kEcXor ? 1 : 4;
  c.window_size = c.fec.group_size() + 4;
  c.selective_repeat = true;
  c.receiver_driven_timeouts = true;
  return c;
}

class EcProtocolTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(Protocols, EcProtocolTest,
                         ::testing::Values(ProtocolKind::kEcXor, ProtocolKind::kEcRs),
                         [](const auto& info) {
                           return info.param == ProtocolKind::kEcXor
                                      ? std::string("Xor")
                                      : std::string("Rs");
                         });

TEST_P(EcProtocolTest, DeliversExactPayloadOnCleanWire) {
  const auto config = ec_config(GetParam());
  ProtocolHarness h(6, config);
  Buffer message = pattern(40 * config.packet_size + 123);
  ASSERT_TRUE(h.send_and_run(message));
  h.expect_all_delivered({message});
  // Parity flowed: every full group's worth, at every receiver.
  EXPECT_GT(h.sender().stats().parity_packets_sent, 0u);
  for (std::size_t i = 0; i < h.n_receivers(); ++i) {
    EXPECT_GT(h.receiver(i).stats().parity_packets_received, 0u) << i;
  }
  // ...but nothing needed repair: no decode, no NAK, no retransmission.
  EXPECT_EQ(h.sender().stats().retransmissions, 0u);
  EXPECT_EQ(h.sender().stats().group_naks_received, 0u);
  for (std::size_t i = 0; i < h.n_receivers(); ++i) {
    EXPECT_EQ(h.receiver(i).stats().fec_decodes, 0u) << i;
    EXPECT_EQ(h.receiver(i).stats().group_naks_sent, 0u) << i;
  }
}

TEST_P(EcProtocolTest, EdgeCaseMessageSizes) {
  const auto config = ec_config(GetParam());
  for (std::size_t bytes :
       {std::size_t{0}, std::size_t{1}, config.packet_size,
        config.packet_size * config.fec.k,        // exactly one group
        config.packet_size * config.fec.k + 1,    // one group + a byte
        config.packet_size * (config.fec.k - 1)}) {  // short tail group only
    ProtocolHarness h(4, config);
    Buffer message = pattern(bytes);
    ASSERT_TRUE(h.send_and_run(message)) << bytes << " bytes";
    h.expect_all_delivered({message});
  }
}

TEST_P(EcProtocolTest, LossesWithinTheMdsBoundDecodeWithoutRetransmission) {
  const auto config = ec_config(GetParam());
  inet::ClusterParams cluster;
  // Rare isolated losses: well under one per group on average, so the
  // per-group parity absorbs essentially all of them.
  cluster.link.frame_error_rate = 0.002;
  ProtocolHarness h(4, config, cluster);
  Buffer message = pattern(120 * config.packet_size);
  ASSERT_TRUE(h.send_and_run(message, sim::seconds(60.0)));
  h.expect_all_delivered({message});
  std::uint64_t decodes = 0, recovered = 0;
  for (std::size_t i = 0; i < h.n_receivers(); ++i) {
    decodes += h.receiver(i).stats().fec_decodes;
    recovered += h.receiver(i).stats().fec_blocks_recovered;
  }
  EXPECT_GT(decodes, 0u) << "losses should have been repaired by decode";
  EXPECT_GE(recovered, decodes);
}

TEST_P(EcProtocolTest, SurvivesBurstLossBeyondTheParityBudget) {
  const auto config = ec_config(GetParam());
  inet::ClusterParams cluster;
  // Bursts of ~8 frames: longer than EC-XOR's single parity and at the
  // edge of EC-RS's budget, forcing the GROUP_NAK fallback path.
  cluster.link.faults.burst.p_good_to_bad = 0.01;
  cluster.link.faults.burst.p_bad_to_good = 0.125;
  ProtocolHarness h(4, config, cluster);
  Buffer message = pattern(150 * config.packet_size);
  ASSERT_TRUE(h.send_and_run(message, sim::seconds(120.0)));
  h.expect_all_delivered({message});
  std::uint64_t group_naks = 0;
  for (std::size_t i = 0; i < h.n_receivers(); ++i) {
    group_naks += h.receiver(i).stats().group_naks_sent;
  }
  // Some group somewhere must have lost more than m blocks.
  EXPECT_GT(group_naks, 0u);
  EXPECT_GT(h.sender().stats().retransmissions, 0u);
}

TEST_P(EcProtocolTest, SequentialMessagesUseFreshSessions) {
  const auto config = ec_config(GetParam());
  ProtocolHarness h(4, config);
  std::vector<Buffer> messages = {pattern(5000), pattern(30 * config.packet_size),
                                  pattern(123)};
  for (const Buffer& m : messages) ASSERT_TRUE(h.send_and_run(m));
  h.expect_all_delivered(messages);
  EXPECT_EQ(h.sender().stats().messages_sent, 3u);
}

}  // namespace
}  // namespace rmc
