// Reliability property suite: every protocol must deliver a byte-exact
// copy to every receiver despite frame corruption, across loss rates,
// retransmission modes (Go-Back-N vs selective repeat), and seeds — and
// the error-control machinery must actually engage.
#include <gtest/gtest.h>

#include "protocol_test_util.h"

namespace rmc {
namespace {

using rmcast::ProtocolKind;
using test::pattern;
using test::ProtocolHarness;

struct LossCase {
  ProtocolKind kind;
  double loss;
  bool selective_repeat;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<LossCase>& info) {
  std::string name = rmcast::protocol_name(info.param.kind);
  name = name.substr(0, name.find('-'));
  name += "_loss" + std::to_string(static_cast<int>(info.param.loss * 10000));
  name += info.param.selective_repeat ? "_sr" : "_gbn";
  name += "_s" + std::to_string(info.param.seed);
  return name;
}

class LossTest : public ::testing::TestWithParam<LossCase> {};

std::vector<LossCase> make_cases() {
  std::vector<LossCase> cases;
  for (auto kind : {ProtocolKind::kAck, ProtocolKind::kNakPolling, ProtocolKind::kRing,
                    ProtocolKind::kFlatTree}) {
    for (double loss : {0.0005, 0.005, 0.02}) {
      for (bool sr : {false, true}) {
        for (std::uint64_t seed : {1ULL, 2ULL}) {
          cases.push_back({kind, loss, sr, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LossTest, ::testing::ValuesIn(make_cases()), case_name);

TEST_P(LossTest, DeliversExactlyDespiteFrameErrors) {
  const LossCase& c = GetParam();
  auto config = test::config_for(c.kind);
  config.selective_repeat = c.selective_repeat;

  inet::ClusterParams cluster;
  cluster.link.frame_error_rate = c.loss;
  cluster.seed = c.seed;

  ProtocolHarness h(5, config, cluster);
  Buffer message = pattern(150'000);
  ASSERT_TRUE(h.send_and_run(message, sim::seconds(60.0)))
      << "transfer did not complete";
  h.expect_all_delivered({message});
}

TEST(LossRecovery, RetransmissionMachineryEngages) {
  // At 2% frame loss over ~38 packets x 5 receivers, some loss is certain;
  // the run must complete via retransmission, not luck.
  auto config = test::config_for(ProtocolKind::kNakPolling);
  inet::ClusterParams cluster;
  cluster.link.frame_error_rate = 0.02;
  cluster.seed = 3;
  ProtocolHarness h(5, config, cluster);
  Buffer message = pattern(150'000);
  ASSERT_TRUE(h.send_and_run(message, sim::seconds(60.0)));
  EXPECT_GT(h.sender().stats().retransmissions, 0u);
  std::uint64_t gaps = 0;
  for (std::size_t i = 0; i < 5; ++i) gaps += h.receiver(i).stats().gaps_detected;
  EXPECT_GT(gaps, 0u);
}

TEST(LossRecovery, LostLastPacketRecoveredByTimer) {
  // A high loss rate makes losing the tail overwhelmingly likely across
  // seeds; only the sender-driven timer can recover it (no later packet
  // ever exposes the gap).
  auto config = test::config_for(ProtocolKind::kAck);
  inet::ClusterParams cluster;
  cluster.link.frame_error_rate = 0.10;
  cluster.seed = 7;
  ProtocolHarness h(3, config, cluster);
  Buffer message = pattern(40'000);
  ASSERT_TRUE(h.send_and_run(message, sim::seconds(60.0)));
  h.expect_all_delivered({message});
}

TEST(LossRecovery, SelectiveRepeatRetransmitsLessThanGoBackN) {
  auto run = [](bool sr) {
    auto config = test::config_for(ProtocolKind::kNakPolling);
    config.selective_repeat = sr;
    inet::ClusterParams cluster;
    cluster.link.frame_error_rate = 0.01;
    cluster.seed = 11;
    ProtocolHarness h(5, config, cluster);
    Buffer message = pattern(400'000);
    EXPECT_TRUE(h.send_and_run(message, sim::seconds(60.0)));
    h.expect_all_delivered({message});
    return h.sender().stats().retransmissions;
  };
  std::uint64_t gbn = run(false);
  std::uint64_t sr = run(true);
  EXPECT_GT(gbn, 0u);
  EXPECT_LE(sr, gbn);
}

TEST(LossRecovery, SequentialMessagesSurviveLoss) {
  auto config = test::config_for(ProtocolKind::kRing);
  inet::ClusterParams cluster;
  cluster.link.frame_error_rate = 0.01;
  cluster.seed = 5;
  ProtocolHarness h(4, config, cluster);
  std::vector<Buffer> messages = {pattern(60'000), pattern(30'000), pattern(90'000)};
  for (const Buffer& m : messages) {
    ASSERT_TRUE(h.send_and_run(m, sim::seconds(60.0)));
  }
  h.expect_all_delivered(messages);
}

TEST(LossRecovery, SuppressionLimitsDuplicateRetransmissions) {
  auto config = test::config_for(ProtocolKind::kAck);
  config.suppress_interval = sim::milliseconds(10);
  inet::ClusterParams cluster;
  cluster.link.frame_error_rate = 0.02;
  cluster.seed = 13;
  ProtocolHarness h(6, config, cluster);
  Buffer message = pattern(200'000);
  ASSERT_TRUE(h.send_and_run(message, sim::seconds(60.0)));
  // With six receivers NAKing the same gaps, suppression must have
  // absorbed some of the would-be duplicate retransmissions.
  EXPECT_GT(h.sender().stats().suppressed_retransmissions, 0u);
}

}  // namespace
}  // namespace rmc
