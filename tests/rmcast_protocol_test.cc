// Behavioural tests of the four protocols on an error-free cluster:
// delivery correctness, control-packet accounting against the paper's
// Table 2 formulas, session sequencing, and edge-case message sizes.
#include <gtest/gtest.h>

#include "protocol_test_util.h"

namespace rmc {
namespace {

using rmcast::ProtocolKind;
using test::config_for;
using test::pattern;
using test::ProtocolHarness;

class EveryProtocolTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(Protocols, EveryProtocolTest,
                         ::testing::Values(ProtocolKind::kAck, ProtocolKind::kNakPolling,
                                           ProtocolKind::kRing, ProtocolKind::kFlatTree),
                         [](const auto& info) {
                           return std::string(rmcast::protocol_name(info.param)).substr(0, 3);
                         });

TEST_P(EveryProtocolTest, DeliversExactPayload) {
  ProtocolHarness h(6, config_for(GetParam()));
  Buffer message = pattern(100'000);
  ASSERT_TRUE(h.send_and_run(message));
  h.expect_all_delivered({message});
}

TEST_P(EveryProtocolTest, NoRetransmissionsWithoutErrors) {
  ProtocolHarness h(6, config_for(GetParam()));
  ASSERT_TRUE(h.send_and_run(pattern(100'000)));
  EXPECT_EQ(h.sender().stats().retransmissions, 0u);
  EXPECT_EQ(h.sender().stats().rto_fires, 0u);
  EXPECT_EQ(h.sender().stats().naks_received, 0u);
  for (std::size_t i = 0; i < h.n_receivers(); ++i) {
    EXPECT_EQ(h.receiver(i).stats().duplicates, 0u) << "receiver " << i;
    EXPECT_EQ(h.receiver(i).stats().gaps_detected, 0u) << "receiver " << i;
  }
}

TEST_P(EveryProtocolTest, SequentialMessagesUseFreshSessions) {
  ProtocolHarness h(4, config_for(GetParam()));
  std::vector<Buffer> messages = {pattern(5000), pattern(60'000), pattern(123)};
  for (const Buffer& m : messages) ASSERT_TRUE(h.send_and_run(m));
  h.expect_all_delivered(messages);
  // Session ids must be distinct and increasing.
  for (std::size_t i = 0; i < h.n_receivers(); ++i) {
    ASSERT_EQ(h.deliveries(i).size(), 3u);
    EXPECT_LT(h.deliveries(i)[0].session, h.deliveries(i)[1].session);
    EXPECT_LT(h.deliveries(i)[1].session, h.deliveries(i)[2].session);
  }
  EXPECT_EQ(h.sender().stats().messages_sent, 3u);
}

TEST_P(EveryProtocolTest, EmptyMessage) {
  ProtocolHarness h(4, config_for(GetParam()));
  Buffer empty;
  ASSERT_TRUE(h.send_and_run(empty));
  h.expect_all_delivered({empty});
}

TEST_P(EveryProtocolTest, SingleByteMessage) {
  ProtocolHarness h(4, config_for(GetParam()));
  Buffer one = pattern(1);
  ASSERT_TRUE(h.send_and_run(one));
  h.expect_all_delivered({one});
}

TEST_P(EveryProtocolTest, MessageNotMultipleOfPacketSize) {
  auto config = config_for(GetParam());
  ProtocolHarness h(4, config);
  Buffer message = pattern(config.packet_size * 5 + 1);
  ASSERT_TRUE(h.send_and_run(message));
  h.expect_all_delivered({message});
}

TEST_P(EveryProtocolTest, MessageSmallerThanOnePacket) {
  ProtocolHarness h(4, config_for(GetParam()));
  Buffer message = pattern(37);
  ASSERT_TRUE(h.send_and_run(message));
  h.expect_all_delivered({message});
  EXPECT_EQ(h.sender().stats().data_packets_sent, 1u);
}

TEST_P(EveryProtocolTest, SingleReceiverGroup) {
  auto config = config_for(GetParam());
  config.tree_height = 1;
  ProtocolHarness h(1, config);
  Buffer message = pattern(50'000);
  ASSERT_TRUE(h.send_and_run(message));
  h.expect_all_delivered({message});
}

TEST_P(EveryProtocolTest, PeakBufferBoundedByWindow) {
  auto config = config_for(GetParam());
  ProtocolHarness h(6, config);
  ASSERT_TRUE(h.send_and_run(pattern(400'000)));
  EXPECT_LE(h.sender().stats().peak_buffered_bytes,
            std::uint64_t{config.window_size} * config.packet_size);
  EXPECT_GT(h.sender().stats().peak_buffered_bytes, 0u);
}

// --- Table 2 control-packet accounting -------------------------------------
//
// The paper's Table 2 gives, per data packet: N control packets for the
// ACK protocol, N/i for NAK-polling with poll interval i, 1 for the ring,
// and N/H for the flat tree (at the sender). Error-free runs must match.

constexpr std::size_t kReceivers = 8;
constexpr std::size_t kPackets = 60;  // 60 packets of 4000 B

Buffer table2_message() { return pattern(4000 * kPackets); }

TEST(Table2, AckProtocolOneAckPerReceiverPerPacket) {
  ProtocolHarness h(kReceivers, config_for(ProtocolKind::kAck));
  ASSERT_TRUE(h.send_and_run(table2_message()));
  for (std::size_t i = 0; i < kReceivers; ++i) {
    EXPECT_EQ(h.receiver(i).stats().acks_sent, kPackets) << "receiver " << i;
  }
  EXPECT_EQ(h.sender().stats().acks_received, kPackets * kReceivers);
}

TEST(Table2, NakPollingOneAckPerPollPerReceiver) {
  auto config = config_for(ProtocolKind::kNakPolling);
  config.poll_interval = 12;
  config.window_size = 16;
  ProtocolHarness h(kReceivers, config);
  ASSERT_TRUE(h.send_and_run(table2_message()));
  // Polled packets: seq 11, 23, 35, 47, 59 — the last also carries LAST.
  const std::uint64_t polls = kPackets / config.poll_interval;
  for (std::size_t i = 0; i < kReceivers; ++i) {
    EXPECT_EQ(h.receiver(i).stats().acks_sent, polls) << "receiver " << i;
  }
  EXPECT_EQ(h.sender().stats().acks_received, polls * kReceivers);
}

TEST(Table2, RingOneAckPerPacketPlusFinalRound) {
  auto config = config_for(ProtocolKind::kRing);
  config.window_size = 16;  // > 8 receivers
  ProtocolHarness h(kReceivers, config);
  ASSERT_TRUE(h.send_and_run(table2_message()));
  // Token rotation: receiver r acknowledges packets r, r+N, ... — 60/8
  // gives 7 or 8 tokens each — plus every receiver acknowledges the LAST
  // packet (the paper's second ring modification).
  std::uint64_t total_acks = 0;
  for (std::size_t i = 0; i < kReceivers; ++i) {
    const auto& stats = h.receiver(i).stats();
    std::uint64_t tokens = kPackets / kReceivers + (i < kPackets % kReceivers ? 1 : 0);
    std::uint64_t expected = tokens + (i == (kPackets - 1) % kReceivers ? 0 : 1);
    EXPECT_EQ(stats.acks_sent, expected) << "receiver " << i;
    total_acks += stats.acks_sent;
  }
  // ~1 ACK per packet plus the final all-receiver round.
  EXPECT_EQ(total_acks, kPackets + kReceivers - 1);
}

TEST(Table2, TreeSenderOnlyHearsChainHeads) {
  auto config = config_for(ProtocolKind::kFlatTree);
  config.tree_height = 4;  // 8 receivers -> 2 chains
  ProtocolHarness h(kReceivers, config);
  ASSERT_TRUE(h.send_and_run(table2_message()));
  // Heads send to the sender: N/H streams of one cumulative ACK per packet.
  EXPECT_EQ(h.sender().stats().acks_received, kPackets * (kReceivers / 4));
  // Interior nodes relay: every non-tail receives its successor's ACKs.
  for (std::size_t i = 0; i < kReceivers; ++i) {
    auto pos = rmcast::tree_position(i, kReceivers, 4);
    if (pos.is_tail) {
      EXPECT_EQ(h.receiver(i).stats().relayed_acks_received, 0u) << i;
    } else {
      // One chain ACK relayed per packet, plus the chain ALLOC response.
      EXPECT_EQ(h.receiver(i).stats().relayed_acks_received, kPackets + 1) << i;
    }
  }
}

TEST(Alloc, EveryReceiverRespondsOncePerMessage) {
  for (auto kind : {ProtocolKind::kAck, ProtocolKind::kNakPolling, ProtocolKind::kRing,
                    ProtocolKind::kFlatTree}) {
    ProtocolHarness h(6, config_for(kind));
    ASSERT_TRUE(h.send_and_run(pattern(20'000)));
    EXPECT_EQ(h.sender().stats().alloc_requests_sent, 1u) << rmcast::protocol_name(kind);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(h.receiver(i).stats().alloc_responses_sent, 1u)
          << rmcast::protocol_name(kind) << " receiver " << i;
    }
  }
}

TEST(Tree, RaggedChainsStillDeliver) {
  auto config = config_for(ProtocolKind::kFlatTree);
  config.tree_height = 3;  // 7 receivers -> chains of 3, 3, 1
  ProtocolHarness h(7, config);
  Buffer message = pattern(80'000);
  ASSERT_TRUE(h.send_and_run(message));
  h.expect_all_delivered({message});
}

TEST(Tree, SingleChainFullHeight) {
  auto config = config_for(ProtocolKind::kFlatTree);
  config.tree_height = 6;
  ProtocolHarness h(6, config);
  Buffer message = pattern(80'000);
  ASSERT_TRUE(h.send_and_run(message));
  h.expect_all_delivered({message});
  // Only the single head talks to the sender.
  EXPECT_EQ(h.receiver(0).stats().acks_sent, h.sender().stats().acks_received);
}

TEST(Snooping, ProtocolsRunUnchangedOnFilteringSwitches) {
  for (auto kind : {ProtocolKind::kNakPolling, ProtocolKind::kFlatTree}) {
    inet::ClusterParams cluster;
    cluster.multicast_snooping = true;
    ProtocolHarness h(6, config_for(kind), cluster);
    Buffer message = pattern(100'000);
    ASSERT_TRUE(h.send_and_run(message)) << rmcast::protocol_name(kind);
    h.expect_all_delivered({message});
  }
}

TEST(Sender, RejectsConcurrentSends) {
  ProtocolHarness h(2, config_for(ProtocolKind::kAck));
  Buffer message = pattern(1000);
  h.sender().send(BytesView(message.data(), message.size()),
                  [](const rmcast::SendOutcome&) {});
  EXPECT_TRUE(h.sender().busy());
  EXPECT_DEATH(h.sender().send(BytesView(message.data(), message.size()),
                               [](const rmcast::SendOutcome&) {}),
               "sender is busy");
}

TEST(Sender, CompletionHandlerMayChainSends) {
  ProtocolHarness h(3, config_for(ProtocolKind::kAck));
  Buffer first = pattern(9000);
  Buffer second = pattern(4000);
  bool all_done = false;
  h.sender().send(BytesView(first.data(), first.size()),
                  [&](const rmcast::SendOutcome&) {
                    h.sender().send(BytesView(second.data(), second.size()),
                                    [&](const rmcast::SendOutcome&) { all_done = true; });
                  });
  h.run_until_done(all_done, sim::seconds(30.0));
  ASSERT_TRUE(all_done);
  h.expect_all_delivered({first, second});
}

}  // namespace
}  // namespace rmc
