// Receiver unit tests using fake runtime/sockets: exact per-packet
// behaviour of the four acknowledgment policies, duplicate and stale
// handling, NAK rate limiting, selective-repeat reordering, and the
// flat-tree chain relay — scenarios a live network reproduces only by
// luck, asserted here deterministically.
#include <gtest/gtest.h>

#include "fake_runtime.h"
#include "rmcast/receiver.h"

namespace rmc {
namespace {

using rmcast::Header;
using rmcast::PacketType;
using rmcast::ProtocolConfig;
using rmcast::ProtocolKind;
using test::fake_membership;
using test::FakeRuntime;
using test::FakeSocket;

constexpr std::size_t kN = 4;  // receivers in the fake group

Buffer data_packet(std::uint32_t session, std::uint32_t seq, std::uint8_t flags,
                   std::size_t len) {
  Writer w;
  rmcast::write_header(w, Header{PacketType::kData, flags, rmcast::kSenderNodeId,
                                 session, seq});
  Buffer body(len, static_cast<std::uint8_t>(seq));
  w.bytes(BytesView(body.data(), body.size()));
  return w.take();
}

Buffer alloc_packet(std::uint32_t session, std::uint64_t bytes, std::uint32_t pkt,
                    std::uint32_t total) {
  Writer w;
  rmcast::write_header(w, Header{PacketType::kAllocReq, 0, rmcast::kSenderNodeId,
                                 session, 0});
  rmcast::write_alloc_request(w, rmcast::AllocRequest{bytes, pkt, total});
  return w.take();
}

class ReceiverUnit {
 public:
  ReceiverUnit(ProtocolKind kind, std::size_t node_id, std::size_t height = 2,
               bool selective_repeat = false)
      : membership_(fake_membership(kN)),
        data_socket_(membership_.group),
        control_socket_(membership_.receiver_control[node_id]) {
    config_.kind = kind;
    config_.packet_size = 100;
    config_.window_size = 8;
    config_.poll_interval = 3;
    config_.tree_height = height;
    config_.selective_repeat = selective_repeat;
    config_.nak_interval = sim::milliseconds(2);
    receiver_ = std::make_unique<rmcast::MulticastReceiver>(
        runtime_, data_socket_, control_socket_, membership_, node_id, config_);
    receiver_->set_message_handler([this](const Buffer& message, std::uint32_t session) {
      delivered_.push_back({session, message});
    });
  }

  // Starts session `s` with `total` packets of 100 bytes.
  void start_session(std::uint32_t s, std::uint32_t total) {
    data_socket_.inject(membership_.sender_control,
                        alloc_packet(s, std::uint64_t{total} * 100, 100, total));
  }

  void inject_data(std::uint32_t session, std::uint32_t seq, std::uint8_t flags = 0,
                   std::size_t len = 100) {
    data_socket_.inject(membership_.sender_control, data_packet(session, seq, flags, len));
  }

  // All control packets emitted so far (both sockets share the control
  // socket for sends).
  std::vector<Header> control_sent() const { return control_socket_.sent_headers(); }
  void clear_sent() { control_socket_.clear_sent(); }

  struct Delivery {
    std::uint32_t session;
    Buffer message;
  };

  FakeRuntime runtime_;
  rmcast::GroupMembership membership_;
  FakeSocket data_socket_;
  FakeSocket control_socket_;
  ProtocolConfig config_;
  std::unique_ptr<rmcast::MulticastReceiver> receiver_;
  std::vector<Delivery> delivered_;
};

TEST(ReceiverAlloc, RespondsToSenderAndAllocates) {
  ReceiverUnit u(ProtocolKind::kAck, 0);
  u.start_session(1, 5);
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kAllocRsp);
  EXPECT_EQ(sent[0].session, 1u);
  EXPECT_EQ(sent[0].node_id, 0);
  EXPECT_EQ(u.control_socket_.sent()[0].dst, u.membership_.sender_control);
  EXPECT_EQ(u.receiver_->stats().alloc_requests_received, 1u);
}

TEST(ReceiverAlloc, DuplicateRequestReAcknowledged) {
  ReceiverUnit u(ProtocolKind::kAck, 0);
  u.start_session(1, 5);
  u.start_session(1, 5);
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[1].type, PacketType::kAllocRsp);
  EXPECT_EQ(u.receiver_->stats().alloc_responses_sent, 2u);
}

TEST(ReceiverAlloc, OlderSessionIgnored) {
  ReceiverUnit u(ProtocolKind::kAck, 0);
  u.start_session(5, 3);
  u.clear_sent();
  u.start_session(4, 3);  // stale
  EXPECT_TRUE(u.control_sent().empty());
  EXPECT_EQ(u.receiver_->stats().stale_packets, 1u);
}

TEST(ReceiverData, AckPolicyAcknowledgesEveryInOrderPacket) {
  ReceiverUnit u(ProtocolKind::kAck, 2);
  u.start_session(1, 3);
  u.clear_sent();
  for (std::uint32_t seq = 0; seq < 3; ++seq) {
    u.inject_data(1, seq, seq == 2 ? rmcast::kFlagLast : 0);
  }
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sent[i].type, PacketType::kAck);
    EXPECT_EQ(sent[i].seq, i + 1);  // cumulative count
    EXPECT_EQ(sent[i].node_id, 2);
  }
  ASSERT_EQ(u.delivered_.size(), 1u);
  EXPECT_EQ(u.delivered_[0].message.size(), 300u);
}

TEST(ReceiverData, DataBeforeAllocIsStale) {
  ReceiverUnit u(ProtocolKind::kAck, 0);
  u.inject_data(1, 0);
  EXPECT_TRUE(u.control_sent().empty());
  EXPECT_EQ(u.receiver_->stats().stale_packets, 1u);
}

TEST(ReceiverData, WrongSessionDataIgnored) {
  ReceiverUnit u(ProtocolKind::kAck, 0);
  u.start_session(2, 3);
  u.clear_sent();
  u.inject_data(1, 0);  // previous session
  u.inject_data(3, 0);  // future session (impossible without alloc)
  EXPECT_TRUE(u.control_sent().empty());
  EXPECT_EQ(u.receiver_->stats().stale_packets, 2u);
}

TEST(ReceiverData, SeqBeyondTotalIgnored) {
  ReceiverUnit u(ProtocolKind::kAck, 0);
  u.start_session(1, 3);
  u.clear_sent();
  u.inject_data(1, 7);
  EXPECT_TRUE(u.control_sent().empty());
  EXPECT_EQ(u.receiver_->stats().stale_packets, 1u);
}

TEST(ReceiverData, GoBackNDropsOutOfOrderAndNaks) {
  ReceiverUnit u(ProtocolKind::kAck, 1);
  u.start_session(1, 4);
  u.clear_sent();
  u.inject_data(1, 0);
  u.inject_data(1, 2);  // gap: 1 missing
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[0].type, PacketType::kAck);
  EXPECT_EQ(sent[1].type, PacketType::kNak);
  EXPECT_EQ(sent[1].seq, 1u);  // first missing
  EXPECT_EQ(u.control_socket_.sent()[1].dst, u.membership_.sender_control);
  // Packet 2 was dropped (GBN): retransmitted 1 then 2 must both be
  // consumed in order.
  u.clear_sent();
  u.inject_data(1, 1, rmcast::kFlagRetrans);
  u.inject_data(1, 2, rmcast::kFlagRetrans);
  sent = u.control_sent();
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[0].seq, 2u);
  EXPECT_EQ(sent[1].seq, 3u);
  EXPECT_EQ(u.receiver_->stats().gaps_detected, 1u);
}

TEST(ReceiverData, NakRateLimited) {
  ReceiverUnit u(ProtocolKind::kNakPolling, 0);
  u.start_session(1, 10);
  u.clear_sent();
  u.inject_data(1, 3);  // gap at 0
  u.inject_data(1, 4);  // still gapped, within the NAK interval
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kNak);
  EXPECT_EQ(u.receiver_->stats().naks_suppressed, 1u);
  // After the interval, a fresh gap event emits again.
  u.runtime_.advance(sim::milliseconds(3));
  u.inject_data(1, 5);
  EXPECT_EQ(u.control_sent().size(), 2u);
}

TEST(ReceiverData, DuplicateReAcknowledgedUnderAckPolicy) {
  ReceiverUnit u(ProtocolKind::kAck, 0);
  u.start_session(1, 3);
  u.inject_data(1, 0);
  u.clear_sent();
  u.inject_data(1, 0, rmcast::kFlagRetrans);
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kAck);
  EXPECT_EQ(sent[0].seq, 1u);
  EXPECT_EQ(u.receiver_->stats().duplicates, 1u);
}

TEST(ReceiverNakPolling, AcknowledgesOnlyPolledAndLastPackets) {
  ReceiverUnit u(ProtocolKind::kNakPolling, 0);  // poll interval 3
  u.start_session(1, 7);
  u.clear_sent();
  // seq 2 and 5 carry POLL (i-1 mod i), seq 6 carries LAST.
  for (std::uint32_t seq = 0; seq < 7; ++seq) {
    std::uint8_t flags = 0;
    if (seq % 3 == 2) flags |= rmcast::kFlagPoll;
    if (seq == 6) flags |= rmcast::kFlagLast;
    u.inject_data(1, seq, flags);
  }
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 3u);
  EXPECT_EQ(sent[0].seq, 3u);
  EXPECT_EQ(sent[1].seq, 6u);
  EXPECT_EQ(sent[2].seq, 7u);
}

TEST(ReceiverNakPolling, DuplicateWithoutPollStaysSilent) {
  ReceiverUnit u(ProtocolKind::kNakPolling, 0);
  u.start_session(1, 5);
  u.inject_data(1, 0);
  u.inject_data(1, 1);
  u.clear_sent();
  u.inject_data(1, 0, rmcast::kFlagRetrans);  // no POLL, no LAST
  EXPECT_TRUE(u.control_sent().empty());
  u.inject_data(1, 1, rmcast::kFlagRetrans | rmcast::kFlagPoll);
  ASSERT_EQ(u.control_sent().size(), 1u);
  EXPECT_EQ(u.control_sent()[0].seq, 2u);
}

TEST(ReceiverRing, AcknowledgesOwnTokensOnly) {
  ReceiverUnit u(ProtocolKind::kRing, 1);  // group of 4: tokens 1, 5, 9...
  u.start_session(1, 10);
  u.clear_sent();
  for (std::uint32_t seq = 0; seq < 9; ++seq) u.inject_data(1, seq);
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[0].seq, 2u);  // consumed token 1 -> cum 2
  EXPECT_EQ(sent[1].seq, 6u);  // consumed token 5 -> cum 6
}

TEST(ReceiverRing, EveryoneAcknowledgesTheLastPacket) {
  ReceiverUnit u(ProtocolKind::kRing, 2);  // tokens 2, 6
  u.start_session(1, 4);
  u.clear_sent();
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    u.inject_data(1, seq, seq == 3 ? rmcast::kFlagLast : 0);
  }
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[0].seq, 3u);  // own token 2
  EXPECT_EQ(sent[1].seq, 4u);  // LAST: all receivers respond
}

TEST(ReceiverRing, RetransmittedDuplicateHealsLostAck) {
  ReceiverUnit u(ProtocolKind::kRing, 3);
  u.start_session(1, 8);
  for (std::uint32_t seq = 0; seq < 6; ++seq) u.inject_data(1, seq);
  u.clear_sent();
  // A retransmission of someone else's token: under selective repeat this
  // is the only healing prompt the sender can give, so every holder
  // re-acknowledges.
  u.inject_data(1, 0, rmcast::kFlagRetrans);
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kAck);
  EXPECT_EQ(sent[0].seq, 6u);
  // A plain (non-retransmitted) duplicate of a foreign token stays silent.
  u.clear_sent();
  u.inject_data(1, 0);
  EXPECT_TRUE(u.control_sent().empty());
}

TEST(ReceiverSelectiveRepeat, BuffersOutOfOrderAndDrainsOnFill) {
  ReceiverUnit u(ProtocolKind::kAck, 0, 2, /*selective_repeat=*/true);
  u.start_session(1, 5);
  u.clear_sent();
  u.inject_data(1, 0);
  u.inject_data(1, 2);
  u.inject_data(1, 3);
  // Buffered 2 and 3; one NAK for the gap at 1 (second gap rate-limited).
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[0].type, PacketType::kAck);
  EXPECT_EQ(sent[1].type, PacketType::kNak);
  EXPECT_EQ(sent[1].seq, 1u);
  u.clear_sent();
  u.inject_data(1, 1, rmcast::kFlagRetrans);
  sent = u.control_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].seq, 4u);  // drained through the buffered packets
  EXPECT_GT(u.receiver_->stats().peak_reorder_bytes, 0u);
}

TEST(ReceiverDelivery, ExactlyOnceDespiteDuplicates) {
  ReceiverUnit u(ProtocolKind::kAck, 0);
  u.start_session(1, 2);
  u.inject_data(1, 0);
  u.inject_data(1, 1, rmcast::kFlagLast);
  u.inject_data(1, 1, rmcast::kFlagLast | rmcast::kFlagRetrans);
  ASSERT_EQ(u.delivered_.size(), 1u);
  EXPECT_EQ(u.delivered_[0].session, 1u);
  EXPECT_EQ(u.receiver_->stats().messages_delivered, 1u);
}

TEST(ReceiverRobustness, GarbageAndTruncatedPacketsIgnored) {
  ReceiverUnit u(ProtocolKind::kAck, 0);
  u.start_session(1, 3);
  u.clear_sent();
  Buffer garbage{0xFF, 0x00, 0x13};
  u.data_socket_.inject(u.membership_.sender_control, garbage);
  Buffer empty;
  u.data_socket_.inject(u.membership_.sender_control, empty);
  Buffer truncated(rmcast::kHeaderBytes - 3, 1);
  u.data_socket_.inject(u.membership_.sender_control, truncated);
  EXPECT_TRUE(u.control_sent().empty());
  EXPECT_TRUE(u.delivered_.empty());
}

// --- flat-tree chain behaviour ---------------------------------------------

Buffer chain_ack(std::uint32_t session, std::uint16_t node, std::uint32_t cum) {
  return rmcast::make_control_packet(
      Header{PacketType::kAck, 0, node, session, cum});
}

Buffer chain_alloc_rsp(std::uint32_t session, std::uint16_t node) {
  return rmcast::make_control_packet(Header{PacketType::kAllocRsp, 0, node, session, 0});
}

// Group of 4 with height 2: chains {0,1} and {2,3}; node 0 and 2 are
// heads, 1 and 3 are tails.
TEST(ReceiverTree, TailAcksEveryPacketToPredecessor) {
  ReceiverUnit u(ProtocolKind::kFlatTree, 1);
  u.start_session(1, 3);
  // Tail responds to alloc immediately, to its predecessor (node 0).
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kAllocRsp);
  EXPECT_EQ(u.control_socket_.sent()[0].dst, u.membership_.receiver_control[0]);
  u.clear_sent();
  u.inject_data(1, 0);
  sent = u.control_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kAck);
  EXPECT_EQ(sent[0].seq, 1u);
  EXPECT_EQ(u.control_socket_.sent()[0].dst, u.membership_.receiver_control[0]);
}

TEST(ReceiverTree, HeadWaitsForSuccessorBeforeAcking) {
  ReceiverUnit u(ProtocolKind::kFlatTree, 0);  // head of chain {0,1}
  u.start_session(1, 3);
  // Head must not respond to alloc until the tail's response arrives.
  EXPECT_TRUE(u.control_sent().empty());
  u.control_socket_.inject(u.membership_.receiver_control[1], chain_alloc_rsp(1, 1));
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kAllocRsp);
  EXPECT_EQ(u.control_socket_.sent()[0].dst, u.membership_.sender_control);

  // Data: holding the packet is necessary but not sufficient.
  u.clear_sent();
  u.inject_data(1, 0);
  EXPECT_TRUE(u.control_sent().empty());
  u.control_socket_.inject(u.membership_.receiver_control[1], chain_ack(1, 1, 1));
  sent = u.control_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kAck);
  EXPECT_EQ(sent[0].seq, 1u);
  EXPECT_EQ(u.control_socket_.sent()[0].dst, u.membership_.sender_control);
}

TEST(ReceiverTree, SuccessorAheadOfSelfIsClamped) {
  ReceiverUnit u(ProtocolKind::kFlatTree, 0);
  u.start_session(1, 4);
  u.control_socket_.inject(u.membership_.receiver_control[1], chain_alloc_rsp(1, 1));
  u.clear_sent();
  // The successor claims cum 3 but we only hold 1 packet: report min.
  u.inject_data(1, 0);
  u.control_socket_.inject(u.membership_.receiver_control[1], chain_ack(1, 1, 3));
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].seq, 1u);
  // Catching up reports the min again.
  u.clear_sent();
  u.inject_data(1, 1);
  u.inject_data(1, 2);
  sent = u.control_sent();
  ASSERT_EQ(sent.size(), 2u);
  EXPECT_EQ(sent[1].seq, 3u);
}

TEST(ReceiverTree, ChainTrafficBeforeAllocIsHeldForTheSession) {
  // The multicast ALLOC_REQ and the unicast chain traffic race; a head
  // may hear its tail's response (or even data ACKs) first and must apply
  // them once its own request arrives.
  ReceiverUnit u(ProtocolKind::kFlatTree, 0);
  u.control_socket_.inject(u.membership_.receiver_control[1], chain_alloc_rsp(1, 1));
  u.control_socket_.inject(u.membership_.receiver_control[1], chain_ack(1, 1, 1));
  EXPECT_TRUE(u.control_sent().empty());
  u.start_session(1, 3);
  // Alloc response flows immediately (tail already confirmed).
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kAllocRsp);
  // And the buffered chain ACK counts once data arrives.
  u.clear_sent();
  u.inject_data(1, 0);
  sent = u.control_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kAck);
  EXPECT_EQ(sent[0].seq, 1u);
}

TEST(ReceiverTree, ReAckFromSuccessorPropagatesUpstream) {
  ReceiverUnit u(ProtocolKind::kFlatTree, 0);
  u.start_session(1, 2);
  u.control_socket_.inject(u.membership_.receiver_control[1], chain_alloc_rsp(1, 1));
  u.inject_data(1, 0);
  u.control_socket_.inject(u.membership_.receiver_control[1], chain_ack(1, 1, 1));
  u.clear_sent();
  // The tail re-ACKs (it saw a retransmitted duplicate): the head forwards
  // the repair even though nothing advanced.
  u.control_socket_.inject(u.membership_.receiver_control[1], chain_ack(1, 1, 1));
  auto sent = u.control_sent();
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].type, PacketType::kAck);
  EXPECT_EQ(sent[0].seq, 1u);
}

}  // namespace
}  // namespace rmc
