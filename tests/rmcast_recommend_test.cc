// Tests for the configuration recommender: the advice must follow the
// paper's conclusions and always be valid and functional.
#include <gtest/gtest.h>

#include "protocol_test_util.h"
#include "rmcast/engine/registry.h"
#include "rmcast/recommend.h"

namespace rmc::rmcast {
namespace {

TEST(Recommend, SmallMessagesGetSinglePacketAck) {
  for (std::uint64_t bytes : {std::uint64_t{1}, std::uint64_t{256}, std::uint64_t{8192},
                              std::uint64_t{50'000}}) {
    auto rec = recommend_config(bytes, 30);
    EXPECT_EQ(rec.config.kind, ProtocolKind::kAck) << bytes;
    EXPECT_GE(rec.config.packet_size, bytes) << "must fit one packet";
    EXPECT_EQ(rec.config.window_size, 2u);
    EXPECT_FALSE(rec.rationale.empty());
  }
}

TEST(Recommend, LargeMessagesGetNakPolling) {
  for (std::uint64_t bytes :
       {std::uint64_t{100'000}, std::uint64_t{500'000}, std::uint64_t{2'097'152}}) {
    auto rec = recommend_config(bytes, 30);
    EXPECT_EQ(rec.config.kind, ProtocolKind::kNakPolling) << bytes;
    EXPECT_EQ(rec.config.packet_size, 8000u);
    // Poll interval at 80-90% of the window (Figure 12's optimum).
    double ratio = static_cast<double>(rec.config.poll_interval) /
                   static_cast<double>(rec.config.window_size);
    EXPECT_GE(ratio, 0.75) << bytes;
    EXPECT_LE(ratio, 0.90) << bytes;
  }
}

TEST(Recommend, WindowScalesWithMessageButIsBounded) {
  auto small = recommend_config(100'000, 10);   // 13 packets
  auto large = recommend_config(8'000'000, 10);  // 1000 packets
  EXPECT_LE(small.config.window_size, 13u);
  EXPECT_GE(small.config.window_size, 8u);
  EXPECT_EQ(large.config.window_size, 50u);  // capped at the paper's buffer
}

class RecommendValidity
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(RecommendValidity, AlwaysValidatesForItsGroup) {
  auto [bytes, receivers] = GetParam();
  auto rec = recommend_config(bytes, receivers);
  EXPECT_EQ(validate(rec.config, receivers), "")
      << bytes << " bytes, " << receivers << " receivers";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecommendValidity,
    ::testing::Combine(::testing::Values<std::uint64_t>(0, 1, 1000, 50'000, 50'001,
                                                        500'000, 10'000'000),
                       ::testing::Values<std::size_t>(1, 2, 16, 30, 100)));

// recommend_config routes through the registry's per-kind tuning hooks;
// the hooks themselves must produce valid configurations for EVERY
// registered kind (not just the two the recommender picks), so a new
// protocol cannot register a tuning the config layer rejects.
TEST(Recommend, EveryRegisteredKindsTuningValidates) {
  for (const EngineEntry& e : ProtocolRegistry::instance().entries()) {
    for (std::uint64_t bytes : {std::uint64_t{1000}, std::uint64_t{500'000},
                                std::uint64_t{10'000'000}}) {
      for (std::size_t receivers : {std::size_t{1}, std::size_t{16}, std::size_t{30}}) {
        ProtocolConfig config;
        config.kind = e.kind;
        e.traits.apply_recommended_tuning(config, bytes, receivers);
        EXPECT_EQ(validate(config, receivers), "")
            << e.traits.display_name << ", " << bytes << " bytes, " << receivers
            << " receivers";
      }
    }
  }
}

// The recommendation must be reproducible from the registry alone: taking
// the recommended kind and applying that entry's tuning hook to a fresh
// config yields the exact knobs the recommender returned.
TEST(Recommend, AdviceMatchesTheRegistryTuningHook) {
  for (std::uint64_t bytes : {std::uint64_t{2000}, std::uint64_t{50'000},
                              std::uint64_t{500'000}, std::uint64_t{8'000'000}}) {
    auto rec = recommend_config(bytes, 30);
    ProtocolConfig replayed;
    replayed.kind = rec.config.kind;
    ProtocolRegistry::instance()
        .entry(rec.config.kind)
        .traits.apply_recommended_tuning(replayed, bytes, 30);
    EXPECT_EQ(replayed.packet_size, rec.config.packet_size) << bytes;
    EXPECT_EQ(replayed.window_size, rec.config.window_size) << bytes;
    EXPECT_EQ(replayed.poll_interval, rec.config.poll_interval) << bytes;
    EXPECT_EQ(replayed.tree_height, rec.config.tree_height) << bytes;
  }
}

// The loss-aware overload: clean and near-clean networks keep the
// paper's ARQ advice, frequent losses switch large messages to the
// Reed-Solomon hybrid, and small messages stay ARQ at any loss rate
// (they span a fraction of one FEC group).
TEST(Recommend, LossAwareAdviceSwitchesToHybridFec) {
  auto clean = recommend_config(2'000'000, 30, 0.0);
  EXPECT_EQ(clean.config.kind, ProtocolKind::kNakPolling);
  auto rare = recommend_config(2'000'000, 30, 0.005);
  EXPECT_EQ(rare.config.kind, ProtocolKind::kNakPolling);

  auto lossy = recommend_config(2'000'000, 30, 0.05);
  EXPECT_EQ(lossy.config.kind, ProtocolKind::kEcRs);
  EXPECT_EQ(lossy.config.fec.k, 32u);
  EXPECT_EQ(lossy.config.fec.m, 8u);
  EXPECT_GE(lossy.config.window_size, lossy.config.fec.group_size());
  EXPECT_EQ(validate(lossy.config, 30), "");
  EXPECT_FALSE(lossy.rationale.empty());

  auto small = recommend_config(2'000, 30, 0.05);
  EXPECT_EQ(small.config.kind, ProtocolKind::kAck);
}

TEST(Recommend, RecommendedConfigActuallyTransfers) {
  for (std::uint64_t bytes : {std::uint64_t{2000}, std::uint64_t{300'000}}) {
    auto rec = recommend_config(bytes, 6);
    test::ProtocolHarness h(6, rec.config);
    Buffer message = test::pattern(bytes);
    ASSERT_TRUE(h.send_and_run(message)) << bytes;
    h.expect_all_delivered({message});
  }
}

}  // namespace
}  // namespace rmc::rmcast
