// Sender unit tests using fake runtime/sockets: allocation handshake and
// retries, window-gated transmission, poll flag placement, retransmission
// triggers (NAK, timeout) with suppression, Go-Back-N vs selective-repeat
// scope, tree-unit accounting, and completion semantics.
#include <gtest/gtest.h>

#include <algorithm>

#include "fake_runtime.h"
#include "rmcast/sender.h"

namespace rmc {
namespace {

using rmcast::Header;
using rmcast::PacketType;
using rmcast::ProtocolConfig;
using rmcast::ProtocolKind;
using test::fake_membership;
using test::FakeRuntime;
using test::FakeSocket;

constexpr std::size_t kN = 4;

Buffer ack_packet(std::uint32_t session, std::uint16_t node, std::uint32_t cum) {
  return rmcast::make_control_packet(Header{PacketType::kAck, 0, node, session, cum});
}

Buffer nak_packet(std::uint32_t session, std::uint16_t node, std::uint32_t seq) {
  return rmcast::make_control_packet(Header{PacketType::kNak, 0, node, session, seq});
}

Buffer rsp_packet(std::uint32_t session, std::uint16_t node) {
  return rmcast::make_control_packet(Header{PacketType::kAllocRsp, 0, node, session, 0});
}

class SenderUnit {
 public:
  explicit SenderUnit(ProtocolConfig config)
      : membership_(fake_membership(kN)), socket_(membership_.sender_control) {
    sender_ = std::make_unique<rmcast::MulticastSender>(runtime_, socket_, membership_,
                                                        config);
  }

  // Sends an 8-packet message (config.packet_size bytes each).
  void send(std::size_t n_packets, std::size_t packet_size) {
    message_.assign(n_packets * packet_size, 0x5C);
    sender_->send(BytesView(message_.data(), message_.size()),
                  [this](const rmcast::SendOutcome& o) {
                    ++completions_;
                    last_outcome_ = o;
                  });
  }

  void respond_alloc(std::initializer_list<std::uint16_t> nodes) {
    for (std::uint16_t node : nodes) {
      socket_.inject(membership_.receiver_control[node],
                     rsp_packet(sender_->session(), node));
    }
  }

  void ack(std::uint16_t node, std::uint32_t cum) {
    socket_.inject(membership_.receiver_control[node],
                   ack_packet(sender_->session(), node, cum));
  }

  void ack_all(std::uint32_t cum) {
    for (std::uint16_t node = 0; node < kN; ++node) ack(node, cum);
  }

  std::vector<Header> data_sent() const {
    std::vector<Header> out;
    for (const auto& h : socket_.sent_headers()) {
      if (h.type == PacketType::kData) out.push_back(h);
    }
    return out;
  }

  FakeRuntime runtime_;
  rmcast::GroupMembership membership_;
  FakeSocket socket_;
  std::unique_ptr<rmcast::MulticastSender> sender_;
  Buffer message_;
  int completions_ = 0;
  rmcast::SendOutcome last_outcome_;
};

ProtocolConfig base_config(ProtocolKind kind) {
  ProtocolConfig c;
  c.kind = kind;
  c.packet_size = 100;
  c.window_size = 3;
  c.poll_interval = 2;
  c.tree_height = 2;
  return c;
}

TEST(SenderAlloc, MulticastsRequestWithMessageGeometry) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(8, 100);
  ASSERT_EQ(u.socket_.sent().size(), 1u);
  EXPECT_EQ(u.socket_.sent()[0].dst, u.membership_.group);
  Header h = u.socket_.header_of(0);
  EXPECT_EQ(h.type, PacketType::kAllocReq);
  EXPECT_EQ(h.session, 1u);
  Reader r(BytesView(u.socket_.sent()[0].payload.data(), u.socket_.sent()[0].payload.size()));
  (void)rmcast::read_header(r);
  auto req = rmcast::read_alloc_request(r);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->message_bytes, 800u);
  EXPECT_EQ(req->packet_bytes, 100u);
  EXPECT_EQ(req->total_packets, 8u);
  EXPECT_TRUE(u.sender_->busy());
}

TEST(SenderAlloc, RetriesUntilEveryoneResponds) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(4, 100);
  u.respond_alloc({0, 1, 2});  // node 3 silent
  u.runtime_.advance(u.sender_->config().alloc_rto + 1);
  // A second ALLOC_REQ went out; still no data.
  auto headers = u.socket_.sent_headers();
  EXPECT_EQ(std::count_if(headers.begin(), headers.end(),
                          [](const Header& h) { return h.type == PacketType::kAllocReq; }),
            2);
  EXPECT_TRUE(u.data_sent().empty());
  u.respond_alloc({3});
  EXPECT_FALSE(u.data_sent().empty());
  EXPECT_EQ(u.sender_->stats().alloc_requests_sent, 2u);
}

TEST(SenderAlloc, DuplicateResponsesCountOnce) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(4, 100);
  u.respond_alloc({0, 0, 0, 1, 1});
  EXPECT_TRUE(u.data_sent().empty());  // nodes 2, 3 still missing
  u.respond_alloc({2, 3});
  EXPECT_FALSE(u.data_sent().empty());
}

TEST(SenderData, WindowGatesTransmission) {
  SenderUnit u(base_config(ProtocolKind::kAck));  // window 3
  u.send(8, 100);
  u.respond_alloc({0, 1, 2, 3});
  auto data = u.data_sent();
  ASSERT_EQ(data.size(), 3u);  // window full
  EXPECT_EQ(data[0].seq, 0u);
  EXPECT_EQ(data[2].seq, 2u);

  // Everyone acknowledges packet 0: exactly one more slides in.
  u.ack_all(1);
  data = u.data_sent();
  ASSERT_EQ(data.size(), 4u);
  EXPECT_EQ(data[3].seq, 3u);

  // A partial acknowledgment (3 of 4 receivers) releases nothing.
  u.ack(0, 2);
  u.ack(1, 2);
  u.ack(2, 2);
  EXPECT_EQ(u.data_sent().size(), 4u);
  u.ack(3, 2);
  EXPECT_EQ(u.data_sent().size(), 5u);
}

TEST(SenderData, PayloadSlicesAreExact) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(2, 100);
  // Overwrite the caller's buffer AFTER send: the protocol must have
  // copied (copy_user_data default).
  std::fill(u.message_.begin(), u.message_.end(), 0x00);
  u.respond_alloc({0, 1, 2, 3});
  auto& sent = u.socket_.sent();
  // sent[0] is the alloc request.
  ASSERT_GE(sent.size(), 3u);
  EXPECT_EQ(sent[1].payload.size(), rmcast::kHeaderBytes + 100);
  EXPECT_EQ(sent[1].payload[rmcast::kHeaderBytes], 0x5C);
}

TEST(SenderData, LastFlagOnFinalPacket) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(2, 100);
  u.respond_alloc({0, 1, 2, 3});
  auto data = u.data_sent();
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0].flags & rmcast::kFlagLast, 0);
  EXPECT_NE(data[1].flags & rmcast::kFlagLast, 0);
}

TEST(SenderData, PollFlagsAtIntervalBoundaries) {
  SenderUnit u(base_config(ProtocolKind::kNakPolling));  // poll 2, window 3
  u.send(6, 100);
  u.respond_alloc({0, 1, 2, 3});
  u.ack_all(2);
  u.ack_all(4);
  u.ack_all(6);
  auto data = u.data_sent();
  ASSERT_EQ(data.size(), 6u);
  for (std::uint32_t seq = 0; seq < 6; ++seq) {
    bool expect_poll = seq % 2 == 1;
    EXPECT_EQ((data[seq].flags & rmcast::kFlagPoll) != 0, expect_poll) << "seq " << seq;
  }
}

TEST(SenderData, CompletionFiresExactlyOnce) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(4, 100);
  u.respond_alloc({0, 1, 2, 3});
  u.ack_all(3);
  EXPECT_EQ(u.completions_, 0);
  u.ack_all(4);
  EXPECT_EQ(u.completions_, 1);
  EXPECT_FALSE(u.sender_->busy());
  u.ack_all(4);  // stragglers after completion
  EXPECT_EQ(u.completions_, 1);
  EXPECT_GT(u.sender_->stats().stale_packets, 0u);
  EXPECT_EQ(u.runtime_.pending_timers(), 0u);  // everything disarmed
}

TEST(SenderRetransmit, NakTriggersGoBackN) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(6, 100);
  u.respond_alloc({0, 1, 2, 3});
  std::size_t before = u.data_sent().size();  // 3 (window)
  u.runtime_.advance(u.sender_->config().suppress_interval + 1);
  u.socket_.inject(u.membership_.receiver_control[2], nak_packet(1, 2, 1));
  auto data = u.data_sent();
  // Go-Back-N from 1: packets 1 and 2 retransmitted with the flag.
  ASSERT_EQ(data.size(), before + 2);
  EXPECT_EQ(data[before].seq, 1u);
  EXPECT_NE(data[before].flags & rmcast::kFlagRetrans, 0);
  EXPECT_EQ(data[before + 1].seq, 2u);
  EXPECT_EQ(u.sender_->stats().naks_received, 1u);
  EXPECT_EQ(u.sender_->stats().retransmissions, 2u);
}

TEST(SenderRetransmit, SelectiveRepeatResendsOnlyTheNakedPacket) {
  auto config = base_config(ProtocolKind::kAck);
  config.selective_repeat = true;
  SenderUnit u(config);
  u.send(6, 100);
  u.respond_alloc({0, 1, 2, 3});
  std::size_t before = u.data_sent().size();
  u.runtime_.advance(u.sender_->config().suppress_interval + 1);
  u.socket_.inject(u.membership_.receiver_control[2], nak_packet(1, 2, 1));
  auto data = u.data_sent();
  ASSERT_EQ(data.size(), before + 1);
  EXPECT_EQ(data[before].seq, 1u);
}

TEST(SenderRetransmit, SuppressionAbsorbsNakBursts) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(6, 100);
  u.respond_alloc({0, 1, 2, 3});
  u.runtime_.advance(u.sender_->config().suppress_interval + 1);
  std::size_t before = u.data_sent().size();
  // Four receivers NAK the same gap back-to-back: one retransmission burst.
  for (std::uint16_t node = 0; node < kN; ++node) {
    u.socket_.inject(u.membership_.receiver_control[node], nak_packet(1, node, 0));
  }
  EXPECT_EQ(u.data_sent().size(), before + 3);  // 0,1,2 once, not four times
  EXPECT_EQ(u.sender_->stats().naks_received, 4u);
  EXPECT_GT(u.sender_->stats().suppressed_retransmissions, 0u);
}

TEST(SenderRetransmit, NakOutsideWindowIgnored) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(6, 100);
  u.respond_alloc({0, 1, 2, 3});
  u.ack_all(2);  // base now 2
  u.runtime_.advance(u.sender_->config().suppress_interval + 1);
  std::size_t before = u.data_sent().size();
  u.socket_.inject(u.membership_.receiver_control[0], nak_packet(1, 0, 0));  // released
  u.socket_.inject(u.membership_.receiver_control[0], nak_packet(1, 0, 99));  // bogus
  EXPECT_EQ(u.data_sent().size(), before);
}

TEST(SenderRetransmit, TimeoutRetransmitsAndRearms) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(4, 100);
  u.respond_alloc({0, 1, 2, 3});
  std::size_t before = u.data_sent().size();
  u.runtime_.advance(u.sender_->config().rto + 1);
  EXPECT_GT(u.data_sent().size(), before);
  EXPECT_EQ(u.sender_->stats().rto_fires, 1u);
  std::size_t after_first = u.data_sent().size();
  u.runtime_.advance(u.sender_->config().rto + 1);
  EXPECT_GT(u.data_sent().size(), after_first);
  EXPECT_EQ(u.sender_->stats().rto_fires, 2u);
}

TEST(SenderRetransmit, ProgressPushesTimeoutOut) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(8, 100);
  u.respond_alloc({0, 1, 2, 3});
  // Keep some receiver's cum advancing just before each deadline: no RTO
  // may fire even though the minimum lags (the ring protocol's normal
  // operating mode).
  const std::uint16_t nodes[] = {0, 1, 2, 3, 0};
  const std::uint32_t cums[] = {1, 1, 1, 1, 2};
  for (int i = 0; i < 5; ++i) {
    u.runtime_.advance(u.sender_->config().rto - sim::milliseconds(1));
    u.ack(nodes[i], cums[i]);
  }
  EXPECT_EQ(u.sender_->stats().rto_fires, 0u);
}

TEST(SenderRetransmit, ForcedPollAfterTimeoutForNakPolling) {
  auto config = base_config(ProtocolKind::kNakPolling);
  config.poll_interval = 3;
  config.window_size = 3;
  SenderUnit u(config);
  u.send(9, 100);
  u.respond_alloc({0, 1, 2, 3});
  // Window holds 0,1,2; poll flag naturally on seq 2. Acks for all 3
  // lost; the timeout batch must still solicit acknowledgment.
  u.runtime_.advance(u.sender_->config().rto + 1);
  auto data = u.data_sent();
  // Find the retransmitted batch and check at least one packet polls.
  bool any_poll_in_retx = false;
  for (const Header& h : data) {
    if ((h.flags & rmcast::kFlagRetrans) != 0 &&
        (h.flags & (rmcast::kFlagPoll | rmcast::kFlagLast)) != 0) {
      any_poll_in_retx = true;
    }
  }
  EXPECT_TRUE(any_poll_in_retx);
}

TEST(SenderTree, OnlyChainHeadsAreUnits) {
  SenderUnit u(base_config(ProtocolKind::kFlatTree));  // H=2: heads 0 and 2
  u.send(4, 100);
  // Tail responses must not start the data phase.
  u.respond_alloc({1, 3});
  EXPECT_TRUE(u.data_sent().empty());
  u.respond_alloc({0, 2});
  EXPECT_FALSE(u.data_sent().empty());

  // ACKs from tails are ignored; only head cums release.
  u.ack(1, 4);
  u.ack(3, 4);
  EXPECT_EQ(u.completions_, 0);
  u.ack(0, 3);
  u.ack(2, 3);  // releases the window; the 4th packet goes out
  EXPECT_EQ(u.completions_, 0);
  u.ack(0, 4);
  u.ack(2, 4);
  EXPECT_EQ(u.completions_, 1);
}

TEST(SenderTree, AckBeyondTransmissionHorizonClamped) {
  SenderUnit u(base_config(ProtocolKind::kFlatTree));  // window 3
  u.send(4, 100);
  u.respond_alloc({0, 1, 2, 3});
  // Heads claim the whole message although only 3 packets were ever sent:
  // the sender must honour the believable prefix and carry on, never
  // complete early or crash.
  u.ack(0, 4);
  u.ack(2, 4);
  EXPECT_EQ(u.completions_, 0);
  EXPECT_EQ(u.data_sent().size(), 4u);  // the clamped release freed a slot
  u.ack(0, 4);
  u.ack(2, 4);
  EXPECT_EQ(u.completions_, 1);
}

TEST(SenderStale, WrongSessionControlPacketsCounted) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(4, 100);
  u.respond_alloc({0, 1, 2, 3});
  std::uint64_t before = u.sender_->stats().stale_packets;
  u.socket_.inject(u.membership_.receiver_control[0], ack_packet(99, 0, 1));
  u.socket_.inject(u.membership_.receiver_control[0], nak_packet(99, 0, 1));
  u.socket_.inject(u.membership_.receiver_control[0], rsp_packet(99, 0));
  EXPECT_EQ(u.sender_->stats().stale_packets, before + 3);
}

TEST(SenderStale, AckFromUnknownNodeIgnored) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(4, 100);
  u.respond_alloc({0, 1, 2, 3});
  u.socket_.inject(u.membership_.receiver_control[0], ack_packet(1, 999, 4));
  EXPECT_EQ(u.completions_, 0);
}

TEST(SenderSessions, IncrementAcrossMessages) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.send(1, 100);
  EXPECT_EQ(u.sender_->session(), 1u);
  u.respond_alloc({0, 1, 2, 3});
  u.ack_all(1);
  EXPECT_EQ(u.completions_, 1);
  u.send(1, 100);
  EXPECT_EQ(u.sender_->session(), 2u);
}

TEST(SenderEdge, EmptyMessageIsOneEmptyPacket) {
  SenderUnit u(base_config(ProtocolKind::kAck));
  u.message_.clear();
  u.sender_->send(BytesView{}, [&](const rmcast::SendOutcome&) { ++u.completions_; });
  u.respond_alloc({0, 1, 2, 3});
  auto data = u.data_sent();
  ASSERT_EQ(data.size(), 1u);
  EXPECT_NE(data[0].flags & rmcast::kFlagLast, 0);
  EXPECT_EQ(u.socket_.sent().back().payload.size(), rmcast::kHeaderBytes);
  u.ack_all(1);
  EXPECT_EQ(u.completions_, 1);
}

}  // namespace
}  // namespace rmc
