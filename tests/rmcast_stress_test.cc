// Randomized stress sweep over the protocol matrix.
//
// ~100 configurations drawn from a fixed-seed PRNG: every protocol kind ×
// group sizes 3–20 × packet/window tunings × Gilbert–Elliott burst loss ×
// scripted fault plans (crashes, pauses, link flaps). Each run must
//
//   * terminate — the sender's completion callback fires inside the
//     simulated time limit (no stuck timer, no lost wakeup), and the run
//     stays within a bounded simulator event budget (no event storms or
//     runaway timer churn from the pooled wheel);
//   * deliver completely — every receiver the sender did not explicitly
//     evict holds a byte-exact copy of the message, delivered exactly
//     once (run_multicast verifies payload bytes; exactly-once is checked
//     here from receiver stats).
//
// The sweep deliberately leans on the event paths the fast-path core
// rewrote: burst loss drives cancel/re-arm RTO churn, fault plans drive
// eviction timers, and group sizes up to 20 drive same-time event fan-out.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "harness/experiment.h"
#include "sim/fault.h"

namespace rmc::rmcast {
namespace {

constexpr ProtocolKind kAllKinds[] = {
    ProtocolKind::kAck, ProtocolKind::kNakPolling, ProtocolKind::kRing,
    ProtocolKind::kFlatTree, ProtocolKind::kBinaryTree};

// Upper bound on simulator events per run. Empirically a lossy 60KB run
// executes well under 200k events; an order-of-magnitude cushion still
// catches quadratic blowups and timer leaks immediately.
constexpr std::uint64_t kEventBudget = 2'000'000;

struct StressConfig {
  harness::MulticastRunSpec spec;
  std::string label;
};

StressConfig draw_config(Rng& rng, int index) {
  StressConfig out;
  harness::MulticastRunSpec& spec = out.spec;

  const ProtocolKind kind = kAllKinds[rng.uniform(5)];
  spec.n_receivers = 3 + rng.uniform(18);  // 3..20
  spec.message_bytes = 24'000 + rng.uniform(5) * 9'000;
  spec.seed = 1000 + static_cast<std::uint64_t>(index);

  ProtocolConfig& c = spec.protocol;
  c.kind = kind;
  c.packet_size = std::size_t{1000} << rng.uniform(4);  // 1000..8000
  c.window_size = 8 + rng.uniform(33);                  // 8..40
  if (kind == ProtocolKind::kRing) {
    // The token rotation releases packet X on the ACK of X+N, so the ring
    // window must exceed the group size.
    c.window_size = spec.n_receivers + 2 + rng.uniform(20);
  }
  if (kind == ProtocolKind::kNakPolling) {
    // A poll past the window would stall the sender before it ever polls.
    c.poll_interval = 1 + rng.uniform(c.window_size);
  }
  if (kind == ProtocolKind::kFlatTree) {
    c.tree_height = 1 + rng.uniform(spec.n_receivers);
  }
  // Eviction on for every run so fault plans cannot stall send() forever.
  c.max_retransmit_rounds = 4;
  c.max_rto = sim::milliseconds(400);

  // Burst loss on roughly half the runs.
  if (rng.chance(0.5)) {
    spec.cluster.link.faults.burst.p_good_to_bad = 0.001 + 0.01 * rng.uniform01();
    spec.cluster.link.faults.burst.p_bad_to_good = 0.2 + 0.5 * rng.uniform01();
  }
  // Independent per-frame corruption on a third.
  if (rng.chance(0.33)) {
    spec.cluster.link.frame_error_rate = 0.002 * rng.uniform01();
  }

  // A fault plan on a quarter of the runs: one crash, pause/resume, or
  // link flap against a random receiver.
  if (rng.chance(0.25)) {
    const std::size_t target = rng.uniform(spec.n_receivers);
    switch (rng.uniform(3)) {
      case 0:
        spec.faults.crash(target, sim::milliseconds(1 + rng.uniform(10)));
        break;
      case 1: {
        const sim::Time at = sim::milliseconds(1 + rng.uniform(5));
        spec.faults.pause(target, at).resume(target, at + sim::milliseconds(15));
        break;
      }
      default:
        spec.faults.flap_link(target, sim::milliseconds(1),
                              sim::milliseconds(1 + rng.uniform(30)),
                              sim::milliseconds(5));
    }
  }
  spec.time_limit = sim::seconds(60.0);

  out.label = str_format(
      "cfg%03d %s n=%zu msg=%llu pkt=%zu win=%zu burst=%.4f fer=%.5f faults=%zu",
      index, protocol_name(kind), spec.n_receivers,
      static_cast<unsigned long long>(spec.message_bytes), c.packet_size,
      c.window_size, spec.cluster.link.faults.burst.p_good_to_bad,
      spec.cluster.link.frame_error_rate, spec.faults.events.size());
  return out;
}

void check_run(const StressConfig& cfg) {
  harness::RunResult r = harness::run_multicast(cfg.spec);

  // Termination: completed inside the simulated time limit.
  ASSERT_TRUE(r.completed) << cfg.label << ": " << r.error;
  // Bounded event budget: no timer leaks or event storms.
  EXPECT_LT(r.events_executed, kEventBudget) << cfg.label;

  // Completeness and exactly-once delivery for every surviving receiver.
  // (run_multicast already verified the payload bytes of each delivery.)
  ASSERT_EQ(r.outcome.receivers.size(), cfg.spec.n_receivers) << cfg.label;
  std::size_t delivered = 0, evicted = 0;
  for (std::size_t i = 0; i < cfg.spec.n_receivers; ++i) {
    if (r.outcome.receivers[i].delivered()) {
      EXPECT_EQ(r.receivers[i].messages_delivered, 1u)
          << cfg.label << " receiver " << i;
      ++delivered;
    } else {
      ++evicted;
    }
  }
  EXPECT_EQ(delivered + evicted, cfg.spec.n_receivers) << cfg.label;
  // Fault-free runs must never evict anyone.
  if (cfg.spec.faults.empty()) {
    EXPECT_EQ(evicted, 0u) << cfg.label;
  }
}

// The matrix is split into four shards so a failure narrows to a quarter
// of the space and `ctest -j` runs them concurrently.
void run_shard(int shard) {
  Rng rng(0xC0FFEE);
  for (int i = 0; i < 100; ++i) {
    StressConfig cfg = draw_config(rng, i);
    if (i % 4 != shard) continue;  // every shard draws identically
    SCOPED_TRACE(cfg.label);
    check_run(cfg);
  }
}

TEST(RmcastStress, RandomizedMatrixShard0) { run_shard(0); }
TEST(RmcastStress, RandomizedMatrixShard1) { run_shard(1); }
TEST(RmcastStress, RandomizedMatrixShard2) { run_shard(2); }
TEST(RmcastStress, RandomizedMatrixShard3) { run_shard(3); }

// The erasure-coded kinds get their own sweep on a separate PRNG stream,
// so adding (or re-tuning) EC coverage can never perturb the ARQ matrix
// above — its draws stay byte-identical. Random group shapes (k, m),
// burst loss sized to sometimes exceed the parity budget, and the same
// fault plans drive parity emission, deferred decode, GROUP_NAK fallback
// and eviction against each other.
StressConfig draw_ec_config(Rng& rng, int index) {
  StressConfig out;
  harness::MulticastRunSpec& spec = out.spec;

  const ProtocolKind kind =
      rng.chance(0.5) ? ProtocolKind::kEcXor : ProtocolKind::kEcRs;
  spec.n_receivers = 3 + rng.uniform(18);  // 3..20
  spec.message_bytes = 24'000 + rng.uniform(5) * 9'000;
  spec.seed = 7000 + static_cast<std::uint64_t>(index);

  ProtocolConfig& c = spec.protocol;
  c.kind = kind;
  c.packet_size = std::size_t{1000} << rng.uniform(4);  // 1000..8000
  c.fec.k = 4 + rng.uniform(kind == ProtocolKind::kEcXor ? 13 : 29);  // 4..16/32
  c.fec.m = kind == ProtocolKind::kEcXor ? 1 : 2 + rng.uniform(7);    // 2..8
  c.window_size = c.fec.group_size() + rng.uniform(9);
  c.selective_repeat = true;
  c.receiver_driven_timeouts = true;
  c.max_retransmit_rounds = 4;
  c.max_rto = sim::milliseconds(400);

  if (rng.chance(0.5)) {
    spec.cluster.link.faults.burst.p_good_to_bad = 0.001 + 0.01 * rng.uniform01();
    spec.cluster.link.faults.burst.p_bad_to_good = 0.2 + 0.5 * rng.uniform01();
  }
  if (rng.chance(0.33)) {
    spec.cluster.link.frame_error_rate = 0.002 * rng.uniform01();
  }
  if (rng.chance(0.25)) {
    const std::size_t target = rng.uniform(spec.n_receivers);
    switch (rng.uniform(3)) {
      case 0:
        spec.faults.crash(target, sim::milliseconds(1 + rng.uniform(10)));
        break;
      case 1: {
        const sim::Time at = sim::milliseconds(1 + rng.uniform(5));
        spec.faults.pause(target, at).resume(target, at + sim::milliseconds(15));
        break;
      }
      default:
        spec.faults.flap_link(target, sim::milliseconds(1),
                              sim::milliseconds(1 + rng.uniform(30)),
                              sim::milliseconds(5));
    }
  }
  spec.time_limit = sim::seconds(60.0);

  out.label = str_format(
      "ec%03d %s n=%zu msg=%llu pkt=%zu win=%zu k=%zu m=%zu burst=%.4f "
      "fer=%.5f faults=%zu",
      index, protocol_name(kind), spec.n_receivers,
      static_cast<unsigned long long>(spec.message_bytes), c.packet_size,
      c.window_size, c.fec.k, c.fec.m,
      spec.cluster.link.faults.burst.p_good_to_bad,
      spec.cluster.link.frame_error_rate, spec.faults.events.size());
  return out;
}

void run_ec_shard(int shard) {
  Rng rng(0xEC0DEC);
  for (int i = 0; i < 48; ++i) {
    StressConfig cfg = draw_ec_config(rng, i);
    if (i % 2 != shard) continue;  // every shard draws identically
    SCOPED_TRACE(cfg.label);
    check_run(cfg);
  }
}

TEST(RmcastStress, RandomizedEcMatrixShard0) { run_ec_shard(0); }
TEST(RmcastStress, RandomizedEcMatrixShard1) { run_ec_shard(1); }

}  // namespace
}  // namespace rmc::rmcast
