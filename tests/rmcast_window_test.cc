// Tests for the sender window, cumulative-ACK tracker, flat-tree layout,
// group membership validation, and protocol-configuration validation.
#include <gtest/gtest.h>

#include <set>

#include "rmcast/config.h"
#include "rmcast/group.h"
#include "rmcast/window.h"

namespace rmc::rmcast {
namespace {

TEST(CumTracker, MinIsMinimumAcrossUnits) {
  CumTracker t;
  t.reset(3);
  EXPECT_EQ(t.min_cum(), 0u);
  EXPECT_TRUE(t.on_ack(0, 5));
  EXPECT_TRUE(t.on_ack(1, 3));
  EXPECT_EQ(t.min_cum(), 0u);  // unit 2 still at 0
  EXPECT_TRUE(t.on_ack(2, 4));
  EXPECT_EQ(t.min_cum(), 3u);
  EXPECT_EQ(t.unit_cum(0), 5u);
}

TEST(CumTracker, StaleAcksIgnored) {
  CumTracker t;
  t.reset(2);
  EXPECT_TRUE(t.on_ack(0, 10));
  EXPECT_FALSE(t.on_ack(0, 10));  // duplicate
  EXPECT_FALSE(t.on_ack(0, 4));   // regression
  EXPECT_EQ(t.unit_cum(0), 10u);
}

TEST(CumTracker, ReturnsUnitAdvanceNotMinAdvance) {
  // The ring protocol depends on this distinction: most ACKs advance a
  // unit without moving the minimum, and those must still report progress.
  CumTracker t;
  t.reset(2);
  EXPECT_TRUE(t.on_ack(0, 1));
  EXPECT_EQ(t.min_cum(), 0u);
  EXPECT_TRUE(t.on_ack(0, 2));
  EXPECT_EQ(t.min_cum(), 0u);
  EXPECT_TRUE(t.on_ack(1, 1));
  EXPECT_EQ(t.min_cum(), 1u);
}

TEST(SenderWindow, ClaimAndReleaseInvariants) {
  SenderWindow w;
  w.reset(10, 4);
  EXPECT_TRUE(w.can_send());
  EXPECT_EQ(w.claim_next(), 0u);
  EXPECT_EQ(w.claim_next(), 1u);
  EXPECT_EQ(w.claim_next(), 2u);
  EXPECT_EQ(w.claim_next(), 3u);
  EXPECT_FALSE(w.can_send());  // window full
  EXPECT_EQ(w.outstanding(), 4u);

  w.release_to(2);
  EXPECT_EQ(w.base(), 2u);
  EXPECT_TRUE(w.can_send());
  EXPECT_EQ(w.claim_next(), 4u);
  EXPECT_EQ(w.claim_next(), 5u);
  EXPECT_FALSE(w.can_send());
}

TEST(SenderWindow, StopsAtTotal) {
  SenderWindow w;
  w.reset(3, 10);
  w.claim_next();
  w.claim_next();
  w.claim_next();
  EXPECT_FALSE(w.can_send());  // all claimed despite window room
  w.release_to(3);
  EXPECT_TRUE(w.all_released());
}

TEST(SenderWindow, ReleaseIsMonotonic) {
  SenderWindow w;
  w.reset(10, 5);
  for (int i = 0; i < 5; ++i) w.claim_next();
  w.release_to(4);
  w.release_to(2);  // stale release must not move base backwards
  EXPECT_EQ(w.base(), 4u);
}

TEST(SenderWindow, TracksTransmissionsPerPacket) {
  SenderWindow w;
  w.reset(10, 4);
  std::uint32_t seq = w.claim_next();
  EXPECT_EQ(w.tx_count(seq), 0u);
  EXPECT_EQ(w.last_sent(seq), -1);
  w.mark_sent(seq, sim::microseconds(10));
  w.mark_sent(seq, sim::microseconds(30));
  EXPECT_EQ(w.tx_count(seq), 2u);
  EXPECT_EQ(w.last_sent(seq), sim::microseconds(30));
}

TEST(SenderWindowDeath, SeqOutsideWindowPanics) {
  SenderWindow w;
  w.reset(10, 4);
  w.claim_next();
  EXPECT_DEATH(w.last_sent(5), "outside the window");
  w.release_to(1);
  EXPECT_DEATH(w.mark_sent(0, 0), "outside the window");
}

// ---------------------------------------------------------------------------
// Sequence wraparound: a window that starts near 0xFFFFFFFF must slide
// through zero exactly as it slides anywhere else. These pin the serial
// arithmetic (wire.h) the window and tracker compare with.

constexpr std::uint32_t kNearWrap = 0xFFFFFFF0u;  // 16 before the boundary

TEST(SenderWindow, SlidesThroughTheWrap) {
  SenderWindow w;
  w.reset(/*total_packets=*/32, /*window_size=*/4, /*start_seq=*/kNearWrap);
  EXPECT_EQ(w.start(), kNearWrap);
  EXPECT_EQ(w.end(), kNearWrap + 32);  // == 0x00000010, wrapped
  EXPECT_EQ(w.base(), kNearWrap);

  // Drain the whole message; claim_next must hand out 0xFFFFFFF0..0xF,
  // then 0, 1, ... without ever stalling at the boundary.
  std::uint32_t expect = kNearWrap;
  while (!w.all_released()) {
    while (w.can_send()) {
      std::uint32_t seq = w.claim_next();
      EXPECT_EQ(seq, expect++);
      w.mark_sent(seq, sim::microseconds(1));
    }
    w.release_to(w.next());  // cumulative ACK for everything sent
  }
  EXPECT_EQ(w.base(), kNearWrap + 32);
  EXPECT_FALSE(w.can_send());
}

TEST(SenderWindow, OutstandingAndIndexSpanTheBoundary) {
  SenderWindow w;
  w.reset(10, 8, 0xFFFFFFFCu);
  for (int i = 0; i < 8; ++i) {
    std::uint32_t seq = w.claim_next();
    w.mark_sent(seq, sim::microseconds(10 + i));
  }
  // The window now covers 0xFFFFFFFC..0x00000003.
  EXPECT_EQ(w.outstanding(), 8u);
  EXPECT_EQ(w.last_sent(0xFFFFFFFEu), sim::microseconds(12));
  EXPECT_EQ(w.last_sent(0x00000002u), sim::microseconds(16));
  EXPECT_EQ(w.tx_count(0x00000003u), 1u);
}

TEST(SenderWindow, ReleaseIsMonotonicAcrossTheWrap) {
  SenderWindow w;
  w.reset(10, 8, 0xFFFFFFFCu);
  for (int i = 0; i < 8; ++i) w.claim_next();
  w.release_to(0x00000002u);  // past the boundary
  EXPECT_EQ(w.base(), 0x00000002u);
  // A stale pre-wrap cumulative must not drag base back to the huge value.
  w.release_to(0xFFFFFFFEu);
  EXPECT_EQ(w.base(), 0x00000002u);
  EXPECT_TRUE(w.can_send());
}

TEST(SenderWindowDeath, WrappedSeqOutsideWindowPanics) {
  SenderWindow w;
  w.reset(10, 4, 0xFFFFFFFEu);
  w.claim_next();  // window is [0xFFFFFFFE, 0xFFFFFFFF)
  // 1 is beyond next even though 1 < 0xFFFFFFFE in magnitude.
  EXPECT_DEATH(w.last_sent(0x00000001u), "outside the window");
}

TEST(CumTracker, TracksAcksAcrossTheWrap) {
  CumTracker t;
  t.reset(2, /*start_cum=*/0xFFFFFFFEu);
  EXPECT_EQ(t.min_cum(), 0xFFFFFFFEu);
  EXPECT_TRUE(t.on_ack(0, 0x00000003u));  // advanced through zero
  EXPECT_EQ(t.min_cum(), 0xFFFFFFFEu);    // unit 1 still pre-wrap
  EXPECT_TRUE(t.on_ack(1, 0x00000001u));
  EXPECT_EQ(t.min_cum(), 0x00000001u);  // serial min, not magnitude min
}

TEST(CumTracker, RejectsStaleAcksFromBeforeTheWrap) {
  CumTracker t;
  t.reset(1, 0xFFFFFFF8u);
  EXPECT_TRUE(t.on_ack(0, 0x00000004u));
  // A delayed duplicate from before the boundary is stale even though its
  // magnitude is enormous.
  EXPECT_FALSE(t.on_ack(0, 0xFFFFFFFCu));
  EXPECT_EQ(t.unit_cum(0), 0x00000004u);
}

TEST(CumTracker, ResetWithSeedsStraddlingTheWrap) {
  CumTracker t;
  t.reset_with({0x00000002u, 0xFFFFFFFDu});
  EXPECT_EQ(t.min_cum(), 0xFFFFFFFDu);  // the pre-wrap count is the laggard
  EXPECT_TRUE(t.on_ack(1, 0x00000001u));
  EXPECT_EQ(t.min_cum(), 0x00000001u);
}

// Flat-tree layout properties, swept over group sizes and heights.
class TreeLayoutTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(TreeLayoutTest, PartitionIsConsistent) {
  auto [n, h] = GetParam();
  if (h > n) GTEST_SKIP();

  std::set<std::size_t> heads_seen;
  for (std::size_t id = 0; id < n; ++id) {
    TreePosition pos = tree_position(id, n, h);
    EXPECT_EQ(pos.chain, id / h);
    EXPECT_EQ(pos.depth, id % h);
    if (pos.is_head) heads_seen.insert(id);
    // Successor/predecessor are mutual.
    if (!pos.is_tail) {
      TreePosition succ = tree_position(pos.successor, n, h);
      EXPECT_FALSE(succ.is_head);
      EXPECT_EQ(succ.predecessor, id);
      EXPECT_EQ(succ.chain, pos.chain);
    }
    if (!pos.is_head) {
      TreePosition pred = tree_position(pos.predecessor, n, h);
      EXPECT_FALSE(pred.is_tail);
      EXPECT_EQ(pred.successor, id);
    }
    // Every chain has depth < h.
    EXPECT_LT(pos.depth, h);
  }
  auto heads = tree_chain_heads(n, h);
  EXPECT_EQ(heads.size(), tree_chain_count(n, h));
  EXPECT_EQ(std::set<std::size_t>(heads.begin(), heads.end()), heads_seen);
  // ceil(n/h) chains.
  EXPECT_EQ(tree_chain_count(n, h), (n + h - 1) / h);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeLayoutTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 5, 16, 30, 31),
                       ::testing::Values<std::size_t>(1, 2, 3, 6, 15, 30)));

TEST(TreeLayout, HeightOneIsAllHeads) {
  for (std::size_t id = 0; id < 5; ++id) {
    TreePosition pos = tree_position(id, 5, 1);
    EXPECT_TRUE(pos.is_head);
    EXPECT_TRUE(pos.is_tail);
  }
  EXPECT_EQ(tree_chain_heads(5, 1).size(), 5u);
}

TEST(TreeLayout, FullHeightIsOneChain) {
  auto heads = tree_chain_heads(6, 6);
  ASSERT_EQ(heads.size(), 1u);
  EXPECT_EQ(heads[0], 0u);
  EXPECT_TRUE(tree_position(5, 6, 6).is_tail);
  EXPECT_FALSE(tree_position(3, 6, 6).is_tail);
}

TEST(TreeLayout, RaggedLastChain) {
  // 7 receivers, height 3: chains {0,1,2}, {3,4,5}, {6}.
  EXPECT_EQ(tree_chain_count(7, 3), 3u);
  TreePosition last = tree_position(6, 7, 3);
  EXPECT_TRUE(last.is_head);
  EXPECT_TRUE(last.is_tail);  // alone in its chain
}

TEST(CumTracker, ResetWithSeedsPerUnitCums) {
  CumTracker t;
  t.reset(3);
  t.on_ack(0, 8);
  t.on_ack(1, 8);
  t.on_ack(2, 8);
  // Roster shrinks to two units part-way through a message; the survivors'
  // counts carry over.
  t.reset_with({8, 5});
  EXPECT_EQ(t.n_units(), 2u);
  EXPECT_EQ(t.unit_cum(0), 8u);
  EXPECT_EQ(t.unit_cum(1), 5u);
  EXPECT_EQ(t.min_cum(), 5u);  // min may drop below the pre-rebuild min
  EXPECT_TRUE(t.on_ack(1, 9));
  EXPECT_EQ(t.min_cum(), 8u);
}

// Live-set layout: evicting a node splices the chain around it, and every
// structure function agrees when fed the same live list.
TEST(TreeLayout, LiveSpliceInteriorNode) {
  // 6 receivers, height 3: chains {0,1,2}, {3,4,5}. Evict 4.
  std::vector<std::size_t> live = {0, 1, 2, 3, 5};
  EXPECT_EQ(tree_chain_heads_live(live, 3), (std::vector<std::size_t>{0, 3}));
  // 5 is promoted into 4's slot: its parent is now 3.
  TreeLinks l5 = flat_tree_links_live(5, live, 3);
  EXPECT_TRUE(l5.has_parent);
  EXPECT_EQ(l5.parent, 3u);
  EXPECT_TRUE(l5.children.empty());
  TreeLinks l3 = flat_tree_links_live(3, live, 3);
  EXPECT_FALSE(l3.has_parent);
  EXPECT_EQ(l3.children, (std::vector<std::size_t>{5}));
}

TEST(TreeLayout, LiveSplicePromotesHeadSuccessor) {
  // Evict head 3: successor 4 becomes the head of the second chain.
  std::vector<std::size_t> live = {0, 1, 2, 4, 5};
  EXPECT_EQ(tree_chain_heads_live(live, 3), (std::vector<std::size_t>{0, 4}));
  TreeLinks l4 = flat_tree_links_live(4, live, 3);
  EXPECT_FALSE(l4.has_parent);  // reports straight to the sender now
  EXPECT_EQ(l4.children, (std::vector<std::size_t>{5}));
  EXPECT_EQ(flat_tree_links_live(5, live, 3).parent, 4u);
}

TEST(TreeLayout, LiveSpliceTailDies) {
  // Evict tail 2: the first chain just shortens; the second is renumbered
  // over ranks, so 3 absorbs rank 2 and chain two starts at 4.
  std::vector<std::size_t> live = {0, 1, 3, 4, 5};
  EXPECT_EQ(tree_chain_heads_live(live, 3), (std::vector<std::size_t>{0, 4}));
  EXPECT_EQ(flat_tree_links_live(3, live, 3).parent, 1u);
}

TEST(TreeLayout, LiveSpliceWholeChainDies) {
  // Both members of what remains of chain two die: one chain left.
  std::vector<std::size_t> live = {0, 1, 2};
  EXPECT_EQ(tree_chain_heads_live(live, 3), (std::vector<std::size_t>{0}));
  EXPECT_EQ(flat_tree_links_live(2, live, 3).parent, 1u);
}

TEST(TreeLayout, LiveHeightClampsToSurvivors) {
  // Fewer survivors than the configured height: one chain over them all.
  std::vector<std::size_t> live = {1, 4};
  EXPECT_EQ(tree_chain_heads_live(live, 3), (std::vector<std::size_t>{1}));
  TreeLinks l4 = binary_tree_links_live(4, live);
  EXPECT_TRUE(l4.has_parent);
  EXPECT_EQ(l4.parent, 1u);
}

TEST(TreeLayout, LiveFullRosterMatchesStaticLayout) {
  const std::size_t n = 7, h = 3;
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  EXPECT_EQ(tree_chain_heads_live(all, h), tree_chain_heads(n, h));
  for (std::size_t id = 0; id < n; ++id) {
    TreeLinks a = flat_tree_links_live(id, all, h);
    TreeLinks b = flat_tree_links(id, n, h);
    EXPECT_EQ(a.has_parent, b.has_parent);
    if (a.has_parent) EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.children, b.children);
    TreeLinks ba = binary_tree_links_live(id, all);
    TreeLinks bb = binary_tree_links(id, n);
    EXPECT_EQ(ba.has_parent, bb.has_parent);
    if (ba.has_parent) EXPECT_EQ(ba.parent, bb.parent);
    EXPECT_EQ(ba.children, bb.children);
  }
}

TEST(TreeLayout, BinaryLiveReindexesHeap) {
  // Evict 1 from a 6-node heap: ranks {0,2,3,4,5}; children of the root
  // are the nodes at ranks 1 and 2.
  std::vector<std::size_t> live = {0, 2, 3, 4, 5};
  TreeLinks root = binary_tree_links_live(0, live);
  EXPECT_FALSE(root.has_parent);
  EXPECT_EQ(root.children, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(binary_tree_links_live(4, live).parent, 2u);
}

TEST(TreeLayout, LiveRank) {
  std::vector<std::size_t> live = {0, 2, 5};
  EXPECT_EQ(live_rank(live, 0), 0u);
  EXPECT_EQ(live_rank(live, 2), 1u);
  EXPECT_EQ(live_rank(live, 5), 2u);
}

GroupMembership valid_membership(std::size_t n) {
  GroupMembership m;
  m.group = {net::Ipv4Addr(239, 0, 0, 1), 5000};
  m.sender_control = {net::Ipv4Addr(10, 0, 0, 1), 5001};
  for (std::size_t i = 0; i < n; ++i) {
    m.receiver_control.push_back({net::Ipv4Addr(10, 0, 0, static_cast<uint8_t>(i + 2)), 5002});
  }
  return m;
}

TEST(Group, ValidMembershipPasses) {
  EXPECT_EQ(valid_membership(3).validate(), "");
}

TEST(Group, RejectsNonMulticastGroup) {
  GroupMembership m = valid_membership(3);
  m.group.addr = net::Ipv4Addr(10, 0, 0, 9);
  EXPECT_NE(m.validate(), "");
}

TEST(Group, RejectsMissingPortsAndReceivers) {
  GroupMembership m = valid_membership(3);
  m.group.port = 0;
  EXPECT_NE(m.validate(), "");

  m = valid_membership(3);
  m.sender_control.port = 0;
  EXPECT_NE(m.validate(), "");

  m = valid_membership(3);
  m.receiver_control[1].port = 0;
  EXPECT_NE(m.validate(), "");

  m = valid_membership(0);
  EXPECT_NE(m.validate(), "");
}

TEST(Group, RejectsDuplicateReceiverEndpoints) {
  GroupMembership m = valid_membership(4);
  m.receiver_control[3] = m.receiver_control[1];
  std::string error = m.validate();
  EXPECT_NE(error, "");
  // Names both colliding slots so the roster typo is findable.
  EXPECT_NE(error.find("1"), std::string::npos);
  EXPECT_NE(error.find("3"), std::string::npos);
}

TEST(Group, RejectsReceiverCollidingWithSender) {
  GroupMembership m = valid_membership(3);
  m.receiver_control[2] = m.sender_control;
  EXPECT_NE(m.validate(), "");
}

TEST(Group, DistinctPortsOnOneAddressAreFine) {
  // Same host running several receivers on different ports is legal.
  GroupMembership m = valid_membership(3);
  for (std::size_t i = 0; i < 3; ++i) {
    m.receiver_control[i] = {net::Ipv4Addr(10, 0, 0, 9),
                             static_cast<std::uint16_t>(6000 + i)};
  }
  EXPECT_EQ(m.validate(), "");
}

TEST(Config, DefaultsValidateForEachProtocol) {
  for (auto kind : {ProtocolKind::kAck, ProtocolKind::kNakPolling, ProtocolKind::kRing,
                    ProtocolKind::kFlatTree}) {
    ProtocolConfig c;
    c.kind = kind;
    c.window_size = 40;  // ring needs > n
    EXPECT_EQ(validate(c, 30), "") << protocol_name(kind);
  }
}

TEST(Config, RingRequiresWindowBeyondReceivers) {
  ProtocolConfig c;
  c.kind = ProtocolKind::kRing;
  c.window_size = 30;
  EXPECT_NE(validate(c, 30), "");
  c.window_size = 31;
  EXPECT_EQ(validate(c, 30), "");
}

TEST(Config, PollIntervalBoundedByWindow) {
  ProtocolConfig c;
  c.kind = ProtocolKind::kNakPolling;
  c.window_size = 20;
  c.poll_interval = 21;
  EXPECT_NE(validate(c, 30), "");
  c.poll_interval = 20;
  EXPECT_EQ(validate(c, 30), "");
  c.poll_interval = 0;
  EXPECT_NE(validate(c, 30), "");
}

TEST(Config, TreeHeightBounds) {
  ProtocolConfig c;
  c.kind = ProtocolKind::kFlatTree;
  c.tree_height = 0;
  EXPECT_NE(validate(c, 30), "");
  c.tree_height = 31;
  EXPECT_NE(validate(c, 30), "");
  c.tree_height = 30;
  EXPECT_EQ(validate(c, 30), "");
}

TEST(Config, PacketSizeBounds) {
  ProtocolConfig c;
  c.packet_size = 0;
  EXPECT_NE(validate(c, 30), "");
  c.packet_size = 65'507;  // + header would exceed the UDP maximum
  EXPECT_NE(validate(c, 30), "");
  c.packet_size = 65'495;
  EXPECT_EQ(validate(c, 30), "");
}

TEST(Config, Describe) {
  ProtocolConfig c;
  c.kind = ProtocolKind::kNakPolling;
  c.packet_size = 8000;
  c.window_size = 50;
  c.poll_interval = 43;
  EXPECT_EQ(c.describe(), "NAK-based pkt=8000 win=50 poll=43");
  c.kind = ProtocolKind::kFlatTree;
  c.tree_height = 6;
  c.selective_repeat = true;
  EXPECT_EQ(c.describe(), "Tree-based pkt=8000 win=50 H=6 SR");
}

}  // namespace
}  // namespace rmc::rmcast
