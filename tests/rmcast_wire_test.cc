// Wire-format tests: header and alloc-request codecs, robustness against
// truncation and garbage (the receive path must drop malformed datagrams,
// never crash or misparse).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "rmcast/wire.h"

namespace rmc::rmcast {
namespace {

TEST(Wire, HeaderRoundTripsEveryTypeAndFlag) {
  for (std::uint8_t type = 1; type <= 9; ++type) {
    for (std::uint8_t flags : {0x00, 0x01, 0x02, 0x04, 0x07}) {
      Header in{static_cast<PacketType>(type), flags, 12345, 0xDEADBEEF, 0xCAFEF00D};
      Writer w;
      write_header(w, in);
      EXPECT_EQ(w.size(), kHeaderBytes);

      Reader r(BytesView(w.buffer().data(), w.buffer().size()));
      auto out = read_header(r);
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(out->type, in.type);
      EXPECT_EQ(out->flags, in.flags);
      EXPECT_EQ(out->node_id, in.node_id);
      EXPECT_EQ(out->session, in.session);
      EXPECT_EQ(out->seq, in.seq);
    }
  }
}

TEST(Wire, TruncatedHeaderRejected) {
  Header in{PacketType::kData, 0, 1, 2, 3};
  Writer w;
  write_header(w, in);
  for (std::size_t len = 0; len < kHeaderBytes; ++len) {
    Reader r(BytesView(w.buffer().data(), len));
    EXPECT_FALSE(read_header(r).has_value()) << "length " << len;
  }
}

TEST(Wire, UnknownTypeRejected) {
  for (std::uint8_t bad : {0, 10, 17, 255}) {
    Buffer bytes(kHeaderBytes, 0);
    bytes[0] = bad;
    Reader r(BytesView(bytes.data(), bytes.size()));
    EXPECT_FALSE(read_header(r).has_value()) << "type " << int{bad};
  }
}

TEST(Wire, AllocRequestRoundTrips) {
  AllocRequest in{(1ULL << 40) + 17, 50'000, 999};
  Writer w;
  write_alloc_request(w, in);
  EXPECT_EQ(w.size(), kAllocRequestBytes);
  Reader r(BytesView(w.buffer().data(), w.buffer().size()));
  auto out = read_alloc_request(r);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->message_bytes, in.message_bytes);
  EXPECT_EQ(out->packet_bytes, in.packet_bytes);
  EXPECT_EQ(out->total_packets, in.total_packets);
}

TEST(Wire, TruncatedAllocRequestRejected) {
  Writer w;
  write_alloc_request(w, AllocRequest{1, 2, 3});
  Reader r(BytesView(w.buffer().data(), kAllocRequestBytes - 1));
  EXPECT_FALSE(read_alloc_request(r).has_value());
}

TEST(Wire, ControlPacketIsHeaderOnly) {
  Header h{PacketType::kAck, 0, 7, 3, 100};
  Buffer packet = make_control_packet(h);
  EXPECT_EQ(packet.size(), kHeaderBytes);
  Reader r(BytesView(packet.data(), packet.size()));
  auto out = read_header(r);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, PacketType::kAck);
  EXPECT_EQ(out->seq, 100u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, TypeNames) {
  EXPECT_STREQ(packet_type_name(PacketType::kData), "DATA");
  EXPECT_STREQ(packet_type_name(PacketType::kNak), "NAK");
  EXPECT_STREQ(packet_type_name(PacketType::kAllocReq), "ALLOC_REQ");
  EXPECT_STREQ(packet_type_name(PacketType::kEvict), "EVICT");
  EXPECT_STREQ(packet_type_name(PacketType::kSuspect), "SUSPECT");
  EXPECT_STREQ(packet_type_name(PacketType::kParity), "PARITY");
  EXPECT_STREQ(packet_type_name(PacketType::kGroupNak), "GROUP_NAK");
}

// The FEC types must occupy their own ids: PARITY/GROUP_NAK parse as
// themselves and never collide with EVICT/SUSPECT (a mis-parse here
// would let a parity frame evict a node).
TEST(Wire, FecTypesNeverAliasEvictOrSuspect) {
  EXPECT_EQ(static_cast<std::uint8_t>(PacketType::kParity), 8);
  EXPECT_EQ(static_cast<std::uint8_t>(PacketType::kGroupNak), 9);
  for (PacketType t : {PacketType::kParity, PacketType::kGroupNak}) {
    Header in{t, 0, 3, 42, 0xABCD1234};
    Writer w;
    write_header(w, in);
    Reader r(BytesView(w.buffer().data(), w.buffer().size()));
    auto out = read_header(r);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->type, t);
    EXPECT_NE(out->type, PacketType::kEvict);
    EXPECT_NE(out->type, PacketType::kSuspect);
  }
}

TEST(Wire, GroupNakRoundTrips) {
  GroupNak in{0xDEADBEEF00FF0001ULL};
  Writer w;
  write_group_nak(w, in);
  EXPECT_EQ(w.size(), kGroupNakBytes);
  Reader r(BytesView(w.buffer().data(), w.buffer().size()));
  auto out = read_group_nak(r);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->missing, in.missing);
}

TEST(Wire, TruncatedGroupNakRejected) {
  Writer w;
  write_group_nak(w, GroupNak{7});
  Reader r(BytesView(w.buffer().data(), kGroupNakBytes - 1));
  EXPECT_FALSE(read_group_nak(r).has_value());
}

// Fuzz-style property: random byte strings must either parse into a
// well-formed header or be rejected — never crash, never read out of
// bounds, and parsing must be a pure function of the first 12 bytes.
class WireFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzzTest, RandomBytesNeverBreakTheParser) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::size_t len = rng.uniform(40);
    Buffer bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());

    Reader r(BytesView(bytes.data(), bytes.size()));
    auto header = read_header(r);
    if (len < kHeaderBytes) {
      EXPECT_FALSE(header.has_value());
      continue;
    }
    if (header) {
      // Whatever parsed must re-serialize to the same 12 bytes.
      Writer w;
      write_header(w, *header);
      ASSERT_EQ(w.size(), kHeaderBytes);
      EXPECT_TRUE(std::equal(w.buffer().begin(), w.buffer().end(), bytes.begin()));
    } else {
      // Rejection must be because of the type octet, nothing else.
      EXPECT_TRUE(bytes[0] < 1 || bytes[0] > 9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest, ::testing::Values(1, 2, 3, 4));

TEST(WireFuzz, RandomHeadersAlwaysRoundTrip) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    Header in;
    in.type = static_cast<PacketType>(1 + rng.uniform(9));
    in.flags = static_cast<std::uint8_t>(rng.next());
    in.node_id = static_cast<std::uint16_t>(rng.next());
    in.session = static_cast<std::uint32_t>(rng.next());
    in.seq = static_cast<std::uint32_t>(rng.next());
    Writer w;
    write_header(w, in);
    Reader r(BytesView(w.buffer().data(), w.buffer().size()));
    auto out = read_header(r);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->type, in.type);
    EXPECT_EQ(out->flags, in.flags);
    EXPECT_EQ(out->node_id, in.node_id);
    EXPECT_EQ(out->session, in.session);
    EXPECT_EQ(out->seq, in.seq);
  }
}

// ---------------------------------------------------------------------------
// Serial sequence arithmetic (RFC 1982 style).

TEST(SerialSeq, OrdersWithoutWrap) {
  EXPECT_TRUE(seq_lt(3, 7));
  EXPECT_FALSE(seq_lt(7, 3));
  EXPECT_FALSE(seq_lt(5, 5));
  EXPECT_TRUE(seq_le(5, 5));
  EXPECT_TRUE(seq_gt(7, 3));
  EXPECT_TRUE(seq_ge(5, 5));
}

TEST(SerialSeq, OrdersAcrossTheWrap) {
  // 0 comes *after* 0xFFFFFFFF: magnitude comparison gets exactly this
  // case backwards.
  EXPECT_TRUE(seq_lt(0xFFFFFFFFu, 0u));
  EXPECT_FALSE(seq_lt(0u, 0xFFFFFFFFu));
  EXPECT_TRUE(seq_lt(0xFFFFFFF0u, 0x0000000Fu));
  EXPECT_TRUE(seq_gt(0x00000002u, 0xFFFFFFFEu));
  EXPECT_TRUE(seq_le(0xFFFFFFFEu, 0x00000001u));
  EXPECT_TRUE(seq_ge(0x00000001u, 0xFFFFFFFEu));
}

TEST(SerialSeq, MaxMinFollowSerialOrder) {
  EXPECT_EQ(seq_max(3u, 7u), 7u);
  EXPECT_EQ(seq_min(3u, 7u), 3u);
  // Across the wrap the *small* integer is the later sequence number.
  EXPECT_EQ(seq_max(0xFFFFFFFEu, 0x00000001u), 0x00000001u);
  EXPECT_EQ(seq_min(0xFFFFFFFEu, 0x00000001u), 0xFFFFFFFEu);
}

TEST(SerialSeq, ValidWithinHalfTheSpace) {
  // The comparison holds for any pair within 2^31 of each other — the
  // furthest apart two live window values can ever be.
  const std::uint32_t base = 0x80000000u;
  EXPECT_TRUE(seq_lt(base, base + 0x7FFFFFFFu));
  EXPECT_TRUE(seq_gt(base + 0x7FFFFFFFu, base));
  // Increments stay ordered through the boundary one step at a time.
  std::uint32_t s = 0xFFFFFFFDu;
  for (int i = 0; i < 6; ++i, ++s) EXPECT_TRUE(seq_lt(s, s + 1));
}

}  // namespace
}  // namespace rmc::rmcast
