// Tests for the runtime backends: SimRuntime adapters and the real-socket
// PosixRuntime (loopback UDP, multicast, timers).
#include <gtest/gtest.h>

#include "inet/cluster.h"
#include "runtime/posix_runtime.h"
#include "runtime/sim_runtime.h"

namespace rmc::rt {
namespace {

TEST(SimRuntime, ClockFollowsSimulator) {
  inet::ClusterParams params;
  params.n_hosts = 2;
  params.wiring = inet::Wiring::kSingleSwitch;
  inet::Cluster cluster(params);
  SimRuntime runtime(cluster.host(0));
  EXPECT_EQ(runtime.now(), 0);
  cluster.simulator().run_until(sim::milliseconds(5));
  EXPECT_EQ(runtime.now(), sim::milliseconds(5));
}

TEST(SimRuntime, TimerFiresAndCancels) {
  inet::ClusterParams params;
  params.n_hosts = 2;
  params.wiring = inet::Wiring::kSingleSwitch;
  inet::Cluster cluster(params);
  SimRuntime runtime(cluster.host(0));
  int fired = 0;
  runtime.schedule_after(sim::milliseconds(1), [&] { ++fired; });
  TimerId cancelled = runtime.schedule_after(sim::milliseconds(2), [&] { ++fired; });
  runtime.cancel(cancelled);
  cluster.simulator().run();
  EXPECT_EQ(fired, 1);
}

TEST(SimRuntime, RunCostChargesHostCpu) {
  inet::ClusterParams params;
  params.n_hosts = 2;
  params.wiring = inet::Wiring::kSingleSwitch;
  inet::Cluster cluster(params);
  SimRuntime runtime(cluster.host(0));
  sim::Time completed_at = -1;
  runtime.run_cost(sim::microseconds(250), [&] { completed_at = runtime.now(); });
  cluster.simulator().run();
  EXPECT_EQ(completed_at, sim::microseconds(250));
  EXPECT_EQ(cluster.host(0).stats().cpu_busy, sim::microseconds(250));
}

TEST(SimRuntime, WrappedSocketRoundTrip) {
  inet::ClusterParams params;
  params.n_hosts = 2;
  params.wiring = inet::Wiring::kSingleSwitch;
  inet::Cluster cluster(params);
  SimRuntime rt0(cluster.host(0));
  SimRuntime rt1(cluster.host(1));

  inet::Socket* raw_rx = cluster.host(1).open_socket();
  raw_rx->bind(7000);
  auto rx = rt1.wrap(raw_rx);
  auto tx = rt0.wrap(cluster.host(0).open_socket());

  Buffer payload{1, 2, 3, 4};
  net::Endpoint from;
  Buffer got;
  rx->set_handler([&](const net::Endpoint& src, BytesView data) {
    from = src;
    got.assign(data.begin(), data.end());
  });
  tx->send_to({inet::Cluster::host_addr(1), 7000}, BytesView(payload.data(), payload.size()));
  cluster.simulator().run();
  EXPECT_EQ(got, payload);
  EXPECT_EQ(from.addr, inet::Cluster::host_addr(0));
  EXPECT_EQ(rx->local_endpoint().port, 7000);
}

// The Posix tests exercise real sockets on loopback. If the environment
// forbids sockets entirely, constructing one fails and the tests skip.
class PosixRuntimeTest : public ::testing::Test {
 protected:
  PosixRuntime runtime_;

  std::unique_ptr<UdpSocket> try_open(PosixSocketOptions options) {
    return runtime_.open_socket(options);
  }
};

TEST_F(PosixRuntimeTest, ClockIsMonotonic) {
  sim::Time a = runtime_.now();
  sim::Time b = runtime_.now();
  EXPECT_GE(b, a);
}

TEST_F(PosixRuntimeTest, TimerFires) {
  bool fired = false;
  runtime_.schedule_after(sim::milliseconds(5), [&] {
    fired = true;
    runtime_.stop();
  });
  runtime_.run_for(sim::seconds(2.0));
  EXPECT_TRUE(fired);
}

TEST_F(PosixRuntimeTest, CancelledTimerDoesNotFire) {
  bool fired = false;
  TimerId id = runtime_.schedule_after(sim::milliseconds(5), [&] { fired = true; });
  runtime_.cancel(id);
  runtime_.run_for(sim::milliseconds(30));
  EXPECT_FALSE(fired);
}

TEST_F(PosixRuntimeTest, UnicastLoopbackRoundTrip) {
  PosixSocketOptions options;
  options.bind_addr = net::Ipv4Addr(127, 0, 0, 1);
  auto rx = try_open(options);
  if (!rx) GTEST_SKIP() << "sockets unavailable";
  auto tx = try_open(options);
  if (!tx) GTEST_SKIP() << "sockets unavailable";

  net::Endpoint rx_ep = rx->local_endpoint();
  ASSERT_NE(rx_ep.port, 0);

  Buffer got;
  rx->set_handler([&](const net::Endpoint&, BytesView data) {
    got.assign(data.begin(), data.end());
    runtime_.stop();
  });
  Buffer payload{9, 8, 7};
  tx->send_to(rx_ep, BytesView(payload.data(), payload.size()));
  runtime_.run_for(sim::seconds(2.0));
  EXPECT_EQ(got, payload);
}

TEST_F(PosixRuntimeTest, MulticastLoopbackRoundTrip) {
  const net::Ipv4Addr group(239, 200, 1, 1);
  PosixSocketOptions rx_options;
  rx_options.port = 43210;
  rx_options.reuse_addr = true;
  rx_options.join_groups = {group};
  auto rx1 = try_open(rx_options);
  if (!rx1) GTEST_SKIP() << "sockets unavailable";
  auto rx2 = try_open(rx_options);
  if (!rx2) GTEST_SKIP() << "sockets unavailable";
  auto tx = try_open({});
  if (!tx) GTEST_SKIP() << "sockets unavailable";

  int delivered = 0;
  auto handler = [&](const net::Endpoint&, BytesView data) {
    ASSERT_EQ(data.size(), 2u);
    if (++delivered == 2) runtime_.stop();
  };
  rx1->set_handler(handler);
  rx2->set_handler(handler);

  Buffer payload{0xCA, 0xFE};
  tx->send_to({group, 43210}, BytesView(payload.data(), payload.size()));
  runtime_.run_for(sim::seconds(2.0));
  EXPECT_EQ(delivered, 2);
}

}  // namespace
}  // namespace rmc::rt
