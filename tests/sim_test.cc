// Unit tests for the discrete-event engine: ordering, determinism,
// cancellation, and clock semantics — properties every higher layer
// depends on. Every behavioral test runs against both event cores (the
// pooled timer wheel and the legacy heap), since the two must be
// observationally identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_pool.h"
#include "sim/simulator.h"
#include "sim/timer_wheel.h"

namespace rmc::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(microseconds(3), 3000);
  EXPECT_EQ(milliseconds(2), 2'000'000);
  EXPECT_EQ(seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.25)), 2.25);
}

TEST(Time, TransmissionTime) {
  // 1250 bytes at 100 Mbps = 100 us.
  EXPECT_EQ(transmission_time(1250, 100e6), microseconds(100));
  // Rounds up fractional nanoseconds.
  EXPECT_EQ(transmission_time(1, 8e9), 1);
}

class SimulatorCores : public ::testing::TestWithParam<EventCoreKind> {
 protected:
  Simulator sim{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(
    AllCores, SimulatorCores,
    ::testing::Values(EventCoreKind::kPooledWheel, EventCoreKind::kLegacyHeap),
    [](const ::testing::TestParamInfo<EventCoreKind>& info) {
      return std::string(event_core_name(info.param));
    });

TEST_P(SimulatorCores, ExecutesInTimeOrder) {
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST_P(SimulatorCores, SameTimeIsFifo) {
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(SimulatorCores, EventsMayScheduleEvents) {
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.schedule_after(1, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 2);
}

TEST_P(SimulatorCores, CancelPreventsExecution) {
  int fired = 0;
  EventId id = sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(5, [&] { ++fired; });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST_P(SimulatorCores, CancelUnknownOrFiredIsNoop) {
  EventId id = sim.schedule_at(1, [] {});
  sim.run();
  sim.cancel(id);      // already fired
  sim.cancel(999999);  // never existed
  sim.cancel(kInvalidEventId);
  EXPECT_TRUE(sim.empty());
}

TEST_P(SimulatorCores, CancelInsideOwnCallbackIsNoop) {
  EventId id = kInvalidEventId;
  int fired = 0;
  id = sim.schedule_at(5, [&] {
    ++fired;
    sim.cancel(id);  // the timer disarming itself after firing
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.empty());
}

TEST_P(SimulatorCores, RunUntilStopsAtDeadline) {
  std::vector<Time> fired;
  sim.schedule_at(10, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(20, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(30, [&] { fired.push_back(sim.now()); });
  sim.run_until(20);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST_P(SimulatorCores, RunUntilAdvancesClockWhenIdle) {
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST_P(SimulatorCores, StepReturnsFalseWhenEmpty) {
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST_P(SimulatorCores, LiveEventsExcludesCancelled) {
  EventId a = sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.live_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.live_events(), 1u);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST_P(SimulatorCores, MixedMagnitudeDelaysExecuteInOrder) {
  // Nanosecond propagation delays, microsecond serialization, millisecond
  // RTOs and second-scale timeouts all coexist; the wheel must interleave
  // across its levels exactly as the heap does.
  std::vector<Time> fired;
  auto record = [&] { fired.push_back(sim.now()); };
  const std::vector<Time> times = {
      seconds(2.0),     nanoseconds(500), milliseconds(40), microseconds(7),
      seconds(1.0),     nanoseconds(501), milliseconds(40) + 1,
      microseconds(7),  milliseconds(1),  nanoseconds(1),
  };
  for (Time t : times) sim.schedule_at(t, record);
  sim.run();
  std::vector<Time> expected = times;
  std::stable_sort(expected.begin(), expected.end());
  EXPECT_EQ(fired, expected);
}

TEST_P(SimulatorCores, SameTimeFifoAcrossCoarseSlots) {
  // A is scheduled far ahead (it lives in a coarse wheel level); B is
  // scheduled for the same instant from close range (it goes straight to
  // the fine level). A was scheduled first, so A must still run first.
  std::vector<char> order;
  const Time t = milliseconds(3);
  sim.schedule_at(t, [&] { order.push_back('A'); });
  sim.schedule_at(t - 1, [&] {
    sim.schedule_after(1, [&] { order.push_back('B'); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<char>{'A', 'B'}));
}

TEST_P(SimulatorCores, CancelRearmChurnKeepsOrder) {
  // The RTO pattern: a long timer cancelled and re-armed on every "ACK".
  std::vector<int> fired;
  EventId rto = kInvalidEventId;
  for (int i = 0; i < 100; ++i) {
    sim.cancel(rto);
    rto = sim.schedule_after(milliseconds(10), [&fired, i] { fired.push_back(i); });
  }
  sim.schedule_after(milliseconds(1), [&fired] { fired.push_back(-1); });
  sim.run();
  // Only the last re-arm and the short event survive.
  EXPECT_EQ(fired, (std::vector<int>{-1, 99}));
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST_P(SimulatorCores, BeyondHorizonDelaysStillOrder) {
  // ~100 hours exceeds the wheel's 2^48 ns horizon and exercises the
  // overflow path; the heap takes it in stride either way.
  std::vector<int> order;
  const Time far = static_cast<Time>(100) * 3600 * 1'000'000'000;
  sim.schedule_at(far, [&] { order.push_back(2); });
  sim.schedule_at(milliseconds(1), [&] { order.push_back(1); });
  sim.schedule_at(far + 1, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), far + 1);
}

TEST_P(SimulatorCores, LargeCaptureCallbacksSurvive) {
  // Captures past the inline small-buffer budget fall back to the heap;
  // the payload must arrive intact and be freed on cancel.
  std::array<std::uint64_t, 16> big{};
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * 3 + 1;
  std::uint64_t sum = 0;
  sim.schedule_at(1, [big, &sum] {
    for (std::uint64_t v : big) sum += v;
  });
  EventId doomed = sim.schedule_at(2, [big, &sum] { sum += 1'000'000; });
  sim.cancel(doomed);
  sim.run();
  std::uint64_t expected = 0;
  for (std::uint64_t v : big) expected += v;
  EXPECT_EQ(sum, expected);
}

// Both cores, driven by the same pseudo-random schedule/cancel script,
// must produce identical execution traces — the micro-scale version of
// tests/determinism_test.cc.
TEST(SimulatorCoreParity, RandomChurnTracesMatch) {
  auto trace_for = [](EventCoreKind kind) {
    Simulator sim(kind);
    std::vector<std::pair<Time, int>> trace;
    std::vector<EventId> ids;
    std::uint64_t lcg = 12345;
    auto next = [&lcg] {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      return lcg >> 33;
    };
    for (int i = 0; i < 500; ++i) {
      const Time at = sim.now() + static_cast<Time>(next() % 2'000'000);
      ids.push_back(sim.schedule_at(at, [&trace, &sim, i] {
        trace.emplace_back(sim.now(), i);
      }));
      if (next() % 3 == 0 && !ids.empty()) {
        sim.cancel(ids[next() % ids.size()]);
      }
    }
    sim.run();
    return trace;
  };
  EXPECT_EQ(trace_for(EventCoreKind::kPooledWheel),
            trace_for(EventCoreKind::kLegacyHeap));
}

TEST(DefaultEventCore, IsProcessWideAndRestorable) {
  const EventCoreKind original = default_event_core();
  EXPECT_EQ(original, EventCoreKind::kPooledWheel);
  set_default_event_core(EventCoreKind::kLegacyHeap);
  {
    Simulator sim;
    EXPECT_EQ(sim.core_kind(), EventCoreKind::kLegacyHeap);
  }
  set_default_event_core(original);
  Simulator sim;
  EXPECT_EQ(sim.core_kind(), EventCoreKind::kPooledWheel);
}

TEST(EventPool, RecyclesRecordsWithFreshGenerations) {
  EventPool pool;
  const std::uint32_t a = pool.allocate();
  const std::uint32_t gen_before = pool.at(a).gen;
  pool.release(a);
  const std::uint32_t b = pool.allocate();
  EXPECT_EQ(a, b);  // LIFO free list reuses the slot immediately
  EXPECT_GT(pool.at(b).gen, gen_before);
  pool.release(b);
}

TEST(EventPool, SteadyStateChurnDoesNotGrow) {
  EventPool pool;
  // Warm up one slab's worth, then churn far more events through it.
  std::vector<std::uint32_t> held;
  for (int i = 0; i < 64; ++i) held.push_back(pool.allocate());
  for (std::uint32_t idx : held) pool.release(idx);
  const std::size_t capacity = pool.capacity();
  for (int round = 0; round < 1000; ++round) {
    const std::uint32_t idx = pool.allocate();
    pool.release(idx);
  }
  EXPECT_EQ(pool.capacity(), capacity);
}

TEST(TimerWheel, CancelledRecordsAreReapedNotExecuted) {
  Simulator sim(EventCoreKind::kPooledWheel);
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.schedule_at(milliseconds(5) + i, [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
  sim.run();
  EXPECT_EQ(fired, 50);
  EXPECT_EQ(sim.events_executed(), 50u);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulatorDeath, SchedulingInThePastPanics) {
  for (EventCoreKind kind :
       {EventCoreKind::kPooledWheel, EventCoreKind::kLegacyHeap}) {
    Simulator sim(kind);
    sim.schedule_at(100, [] {});
    sim.run();
    EXPECT_DEATH(sim.schedule_at(50, [] {}), "scheduled in the past");
  }
}

}  // namespace
}  // namespace rmc::sim
