// Unit tests for the discrete-event engine: ordering, determinism,
// cancellation, and clock semantics — properties every higher layer
// depends on.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace rmc::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(microseconds(3), 3000);
  EXPECT_EQ(milliseconds(2), 2'000'000);
  EXPECT_EQ(seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.25)), 2.25);
}

TEST(Time, TransmissionTime) {
  // 1250 bytes at 100 Mbps = 100 us.
  EXPECT_EQ(transmission_time(1250, 100e6), microseconds(100));
  // Rounds up fractional nanoseconds.
  EXPECT_EQ(transmission_time(1, 8e9), 1);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsMayScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.schedule_after(1, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(5, [&] { ++fired; });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelUnknownOrFiredIsNoop) {
  Simulator sim;
  EventId id = sim.schedule_at(1, [] {});
  sim.run();
  sim.cancel(id);      // already fired
  sim.cancel(999999);  // never existed
  sim.cancel(kInvalidEventId);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<Time> fired;
  sim.schedule_at(10, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(20, [&] { fired.push_back(sim.now()); });
  sim.schedule_at(30, [&] { fired.push_back(sim.now()); });
  sim.run_until(20);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));
  EXPECT_EQ(sim.now(), 20);
  sim.run();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, LiveEventsExcludesCancelled) {
  Simulator sim;
  EventId a = sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.live_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.live_events(), 1u);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulatorDeath, SchedulingInThePastPanics) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(50, [] {}), "scheduled in the past");
}

}  // namespace
}  // namespace rmc::sim
