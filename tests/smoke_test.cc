// End-to-end smoke: every protocol delivers a message on the Figure-7
// cluster; the baselines complete. Deeper behaviour is covered by the
// per-module suites.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace rmc {
namespace {

harness::MulticastRunSpec spec_for(rmcast::ProtocolKind kind) {
  harness::MulticastRunSpec spec;
  spec.n_receivers = 8;
  spec.message_bytes = 100'000;
  spec.protocol.kind = kind;
  spec.protocol.packet_size = 8192;
  spec.protocol.window_size = 16;
  spec.protocol.poll_interval = 12;
  spec.protocol.tree_height = 4;
  return spec;
}

TEST(Smoke, AckProtocolDelivers) {
  auto result = harness::run_multicast(spec_for(rmcast::ProtocolKind::kAck));
  ASSERT_TRUE(result.completed) << result.error;
  EXPECT_GT(result.seconds, 0.0);
}

TEST(Smoke, NakPollingProtocolDelivers) {
  auto result = harness::run_multicast(spec_for(rmcast::ProtocolKind::kNakPolling));
  ASSERT_TRUE(result.completed) << result.error;
}

TEST(Smoke, RingProtocolDelivers) {
  auto result = harness::run_multicast(spec_for(rmcast::ProtocolKind::kRing));
  ASSERT_TRUE(result.completed) << result.error;
}

TEST(Smoke, TreeProtocolDelivers) {
  auto result = harness::run_multicast(spec_for(rmcast::ProtocolKind::kFlatTree));
  ASSERT_TRUE(result.completed) << result.error;
}

TEST(Smoke, TcpFanoutCompletes) {
  auto result = harness::run_tcp_fanout(4, 100'000, 1);
  ASSERT_TRUE(result.completed) << result.error;
}

TEST(Smoke, RawUdpCompletes) {
  auto result = harness::run_raw_udp(4, 100'000, 8192, 1);
  ASSERT_TRUE(result.completed) << result.error;
}

}  // namespace
}  // namespace rmc
