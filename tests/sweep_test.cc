// The parallel sweep engine's contract: byte-identical to serial.
//
// The bench tier trusts SweepRunner with every figure/table grid, so this
// suite pins the properties that make --jobs=N safe to default on:
//
//   * spec_fingerprint covers every knob that can change a run's outcome
//     (and ignores the out-of-band channels that cannot);
//   * a parallel sweep produces the same per-point results AND the same
//     merged metrics snapshot (full JSON) as a serial one;
//   * the content-hash cache deduplicates identical points without
//     changing any observable output, and can be turned off;
//   * a failed or throwing point is reported on its own ticket without
//     poisoning the rest of the batch;
//   * run_trials surfaces which seed failed and why.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "harness/trace.h"

namespace rmc::harness {
namespace {

// A transfer small enough that a grid of them stays fast under sanitizers.
MulticastRunSpec small_spec(rmcast::ProtocolKind kind, std::uint64_t seed) {
  MulticastRunSpec spec;
  spec.n_receivers = 8;
  spec.message_bytes = 60'000;
  spec.protocol.kind = kind;
  spec.protocol.packet_size = 8000;
  spec.protocol.window_size = 20;
  if (kind == rmcast::ProtocolKind::kNakPolling) spec.protocol.poll_interval = 6;
  spec.seed = seed;
  return spec;
}

std::vector<MulticastRunSpec> small_grid() {
  std::vector<MulticastRunSpec> grid;
  for (rmcast::ProtocolKind kind :
       {rmcast::ProtocolKind::kAck, rmcast::ProtocolKind::kNakPolling,
        rmcast::ProtocolKind::kBinaryTree}) {
    for (std::uint64_t seed : {1, 2}) {
      grid.push_back(small_spec(kind, seed));
    }
  }
  return grid;
}

TEST(SpecFingerprint, EqualSpecsHashEqual) {
  MulticastRunSpec a = small_spec(rmcast::ProtocolKind::kAck, 7);
  MulticastRunSpec b = small_spec(rmcast::ProtocolKind::kAck, 7);
  EXPECT_EQ(spec_fingerprint(a), spec_fingerprint(b));
}

TEST(SpecFingerprint, SensitiveToEveryOutcomeAffectingKnob) {
  const MulticastRunSpec base = small_spec(rmcast::ProtocolKind::kAck, 7);
  const std::uint64_t base_fp = spec_fingerprint(base);

  auto differs = [&](auto mutate) {
    MulticastRunSpec spec = base;
    mutate(spec);
    return spec_fingerprint(spec) != base_fp;
  };
  EXPECT_TRUE(differs([](MulticastRunSpec& s) { s.seed = 8; }));
  EXPECT_TRUE(differs([](MulticastRunSpec& s) { s.n_receivers = 9; }));
  EXPECT_TRUE(differs([](MulticastRunSpec& s) { s.message_bytes += 1; }));
  EXPECT_TRUE(differs(
      [](MulticastRunSpec& s) { s.protocol.kind = rmcast::ProtocolKind::kRing; }));
  EXPECT_TRUE(differs([](MulticastRunSpec& s) { s.protocol.window_size = 21; }));
  EXPECT_TRUE(differs([](MulticastRunSpec& s) { s.protocol.selective_repeat = true; }));
  EXPECT_TRUE(
      differs([](MulticastRunSpec& s) { s.cluster.link.frame_error_rate = 0.01; }));
  EXPECT_TRUE(differs(
      [](MulticastRunSpec& s) { s.cluster.wiring = inet::Wiring::kSharedBus; }));
  EXPECT_TRUE(differs(
      [](MulticastRunSpec& s) { s.cluster.host.send_syscall = sim::microseconds(9); }));
  EXPECT_TRUE(
      differs([](MulticastRunSpec& s) { s.faults.crash(3, sim::milliseconds(5)); }));
  EXPECT_TRUE(differs([](MulticastRunSpec& s) { s.time_limit = sim::seconds(1.0); }));
  EXPECT_TRUE(differs([](MulticastRunSpec& s) { s.verify_payload = false; }));
}

TEST(SpecFingerprint, IgnoresOutOfBandChannels) {
  const MulticastRunSpec base = small_spec(rmcast::ProtocolKind::kAck, 7);
  MulticastRunSpec spec = base;
  metrics::Registry registry;
  spec.metrics = &registry;
  EXPECT_EQ(spec_fingerprint(spec), spec_fingerprint(base));
}

// The tentpole property: run the same grid serially and with four workers
// and require identical per-point results and a byte-identical merged
// metrics snapshot. (Even on one core, four workers interleave ticket
// completion enough to exercise the fold-cursor ordering.)
TEST(SweepRunner, ParallelSweepIsByteIdenticalToSerial) {
  const std::vector<MulticastRunSpec> grid = small_grid();

  auto sweep = [&](std::size_t jobs, std::string* json) {
    metrics::Registry registry;
    std::vector<RunResult> results;
    {
      SweepRunner::Options options;
      options.jobs = jobs;
      options.metrics = &registry;
      SweepRunner runner(options);
      std::vector<SweepRunner::Ticket> tickets;
      for (const MulticastRunSpec& spec : grid) tickets.push_back(runner.submit(spec));
      for (SweepRunner::Ticket t : tickets) results.push_back(runner.result(t));
    }
    *json = registry.to_json();
    return results;
  };

  std::string serial_json, parallel_json;
  const std::vector<RunResult> serial = sweep(1, &serial_json);
  const std::vector<RunResult> parallel = sweep(4, &parallel_json);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].completed) << "point " << i;
    EXPECT_TRUE(parallel[i].completed) << "point " << i;
    EXPECT_EQ(serial[i].seconds, parallel[i].seconds) << "point " << i;
    EXPECT_EQ(serial[i].events_executed, parallel[i].events_executed)
        << "point " << i;
    EXPECT_EQ(serial[i].sender.retransmissions, parallel[i].sender.retransmissions)
        << "point " << i;
    EXPECT_EQ(serial[i].link_drops, parallel[i].link_drops) << "point " << i;
  }
  EXPECT_EQ(serial_json, parallel_json);
}

TEST(SweepRunner, CacheDeduplicatesIdenticalSpecs) {
  const MulticastRunSpec spec = small_spec(rmcast::ProtocolKind::kAck, 3);

  SweepRunner::Options options;
  options.jobs = 1;
  SweepRunner runner(options);
  const SweepRunner::Ticket a = runner.submit(spec);
  const SweepRunner::Ticket b = runner.submit(spec);
  const SweepRunner::Ticket c = runner.submit(spec);

  const RunResult& ra = runner.result(a);
  const RunResult& rb = runner.result(b);
  const RunResult& rc = runner.result(c);
  EXPECT_TRUE(ra.completed);
  EXPECT_EQ(ra.seconds, rb.seconds);
  EXPECT_EQ(ra.seconds, rc.seconds);

  const SweepRunner::Stats stats = runner.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.executed, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
}

// A cache hit must fold the shared point's metrics once per ticket, so the
// merged snapshot reads as if every ticket had re-run — identical to a
// cache-off sweep of the same tickets.
TEST(SweepRunner, CacheDoesNotChangeTheMergedSnapshot) {
  const MulticastRunSpec spec = small_spec(rmcast::ProtocolKind::kNakPolling, 5);

  auto sweep = [&](bool cache) {
    metrics::Registry registry;
    {
      SweepRunner::Options options;
      options.jobs = 1;
      options.metrics = &registry;
      options.cache = cache;
      SweepRunner runner(options);
      runner.submit(spec);
      runner.submit(spec);
      runner.wait_all();
    }
    return registry.to_json();
  };

  EXPECT_EQ(sweep(true), sweep(false));
}

TEST(SweepRunner, CacheOffReexecutesEveryTicket) {
  const MulticastRunSpec spec = small_spec(rmcast::ProtocolKind::kAck, 3);

  SweepRunner::Options options;
  options.jobs = 1;
  options.cache = false;
  SweepRunner runner(options);
  runner.submit(spec);
  runner.submit(spec);
  runner.wait_all();

  const SweepRunner::Stats stats = runner.stats();
  EXPECT_EQ(stats.executed, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

// A spec carrying a sender_trace pointer writes through an out-of-band
// channel the cache cannot replay, so it must bypass the cache.
TEST(SweepRunner, SenderTraceBypassesCache) {
  MulticastRunSpec spec = small_spec(rmcast::ProtocolKind::kAck, 3);
  std::vector<TraceRecorder::Event> trace_a, trace_b;

  SweepRunner::Options options;
  options.jobs = 1;
  SweepRunner runner(options);
  spec.sender_trace = &trace_a;
  runner.submit(spec);
  spec.sender_trace = &trace_b;
  runner.submit(spec);
  runner.wait_all();

  const SweepRunner::Stats stats = runner.stats();
  EXPECT_EQ(stats.executed, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a.size(), trace_b.size());
}

TEST(SweepRunner, SubmitTaskRunsArbitraryWork) {
  SweepRunner::Options options;
  options.jobs = 4;
  SweepRunner runner(options);
  std::vector<SweepRunner::Ticket> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(runner.submit_task([i](metrics::Registry*) {
      RunResult result;
      result.completed = true;
      result.seconds = 0.25 * i;
      return result;
    }));
  }
  for (int i = 0; i < 8; ++i) {
    const RunResult& r = runner.result(tickets[i]);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.seconds, 0.25 * i);
  }
}

// One bad point in a parallel batch: its ticket reports the failure, every
// other ticket is unaffected.
TEST(SweepRunner, FailureStaysOnItsOwnTicket) {
  SweepRunner::Options options;
  options.jobs = 4;
  SweepRunner runner(options);
  std::vector<SweepRunner::Ticket> tickets;
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(runner.submit_task([i](metrics::Registry*) -> RunResult {
      if (i == 3) throw std::runtime_error("injected point failure");
      RunResult result;
      result.completed = true;
      result.seconds = 1.0 + i;
      return result;
    }));
  }
  for (int i = 0; i < 6; ++i) {
    const RunResult& r = runner.result(tickets[i]);
    if (i == 3) {
      EXPECT_FALSE(r.completed);
      EXPECT_EQ(r.error, "injected point failure");
    } else {
      EXPECT_TRUE(r.completed) << "point " << i;
      EXPECT_EQ(r.seconds, 1.0 + i);
    }
  }
}

TEST(RunTrials, ReportsMeanOverCompletedSeeds) {
  TrialsOutcome outcome = run_trials(
      [](std::uint64_t seed) {
        RunResult r;
        r.completed = true;
        r.seconds = static_cast<double>(seed);
        return r;
      },
      3, 10);
  EXPECT_TRUE(outcome.ok);
  EXPECT_DOUBLE_EQ(outcome.mean_seconds, 11.0);  // seeds 10, 11, 12
}

TEST(RunTrials, SurfacesTheFailingSeedAndError) {
  TrialsOutcome outcome = run_trials(
      [](std::uint64_t seed) {
        RunResult r;
        r.completed = seed != 12;
        r.seconds = 1.0;
        if (!r.completed) r.error = "timed out after 120.0s";
        return r;
      },
      3, 10);
  EXPECT_FALSE(outcome.ok);
  EXPECT_LT(outcome.mean_seconds, 0.0);
  EXPECT_EQ(outcome.failed_seed, 12u);
  EXPECT_EQ(outcome.error, "timed out after 120.0s");
  EXPECT_NE(outcome.describe_failure().find("seed 12"), std::string::npos);
  EXPECT_NE(outcome.describe_failure().find("timed out"), std::string::npos);
}

TEST(RunTrials, FailureWithoutDetailGetsAStockMessage) {
  TrialsOutcome outcome = run_trials(
      [](std::uint64_t) {
        return RunResult{};  // completed = false, no error text
      },
      1, 4);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.failed_seed, 4u);
  EXPECT_EQ(outcome.error, "run did not complete");
}

}  // namespace
}  // namespace rmc::harness
