// The declarative fabric builder (src/net/topology.h): every compiled
// wiring must be a valid spanning tree with collision-free port
// assignments, the snooping route table must actually steer toward its
// target, and the Figure-7 shape must reproduce the legacy hand-wired
// testbed port-for-port.
#include "net/topology.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "harness/experiment.h"

namespace rmc::net {
namespace {

// Structural validity: hosts land on real ports, no port is used twice,
// and the trunk set is a spanning tree over the switches.
void check_wiring(const TopologySpec& spec, std::size_t n_hosts) {
  const TopologyWiring w = build_wiring(spec, n_hosts);
  SCOPED_TRACE(testing::Message() << "n_hosts=" << n_hosts);
  ASSERT_EQ(w.hosts.size(), n_hosts);
  ASSERT_FALSE(w.switches.empty());
  ASSERT_EQ(w.trunks.size() + 1, w.switches.size());  // spanning tree

  std::set<std::pair<std::size_t, std::size_t>> used;
  for (const HostAttachment& at : w.hosts) {
    ASSERT_LT(at.sw, w.switches.size());
    ASSERT_LT(at.port, w.switches[at.sw].n_ports);
    ASSERT_TRUE(used.insert({at.sw, at.port}).second) << "host port reused";
  }
  for (const TrunkPlan& t : w.trunks) {
    ASSERT_LT(t.sw_a, w.switches.size());
    ASSERT_LT(t.sw_b, w.switches.size());
    ASSERT_NE(t.sw_a, t.sw_b);
    ASSERT_LT(t.port_a, w.switches[t.sw_a].n_ports);
    ASSERT_LT(t.port_b, w.switches[t.sw_b].n_ports);
    ASSERT_GE(t.capacity_factor, 1.0);
    ASSERT_TRUE(used.insert({t.sw_a, t.port_a}).second) << "trunk port reused";
    ASSERT_TRUE(used.insert({t.sw_b, t.port_b}).second) << "trunk port reused";
  }

  // Route validity: from any switch, repeatedly taking the advertised
  // first-hop port must arrive at the target within |switches| hops.
  const auto routes = switch_routes(w);
  ASSERT_EQ(routes.size(), w.switches.size());
  for (std::size_t s = 0; s < w.switches.size(); ++s) {
    ASSERT_EQ(routes[s][s], static_cast<std::size_t>(-1));
    for (std::size_t t = 0; t < w.switches.size(); ++t) {
      if (s == t) continue;
      std::size_t cur = s;
      std::size_t hops = 0;
      while (cur != t) {
        ASSERT_LE(++hops, w.switches.size()) << "route loops: " << s << "->" << t;
        const std::size_t port = routes[cur][t];
        // The port must belong to exactly one trunk adjacent to cur.
        std::size_t next = static_cast<std::size_t>(-1);
        for (const TrunkPlan& trunk : w.trunks) {
          if (trunk.sw_a == cur && trunk.port_a == port) next = trunk.sw_b;
          if (trunk.sw_b == cur && trunk.port_b == port) next = trunk.sw_a;
        }
        ASSERT_NE(next, static_cast<std::size_t>(-1))
            << "route names a non-trunk port: switch " << cur << " port " << port;
        cur = next;
      }
    }
  }
}

TEST(Topology, AllShapesProduceValidWiring) {
  for (std::size_t n : {1u, 2u, 16u, 31u, 33u, 128u, 1024u}) {
    check_wiring(TopologySpec::single_switch(), n);
    check_wiring(TopologySpec::figure7(16), n);
    check_wiring(TopologySpec::spine_leaf(16, 4), n);
    check_wiring(TopologySpec::fat_tree(16, 4, 2, 4), n);
  }
  // Odd radices and the 10^4 regime the XL bench drives.
  check_wiring(TopologySpec::spine_leaf(3, 2), 100);
  check_wiring(TopologySpec::spine_leaf(16, 4), 10'008);
  check_wiring(TopologySpec::fat_tree(8, 3, 2, 2), 1000);
}

TEST(Topology, Oversubscription) {
  EXPECT_DOUBLE_EQ(TopologySpec::single_switch().oversubscription(), 1.0);
  EXPECT_DOUBLE_EQ(TopologySpec::figure7(16).oversubscription(), 16.0);
  EXPECT_DOUBLE_EQ(TopologySpec::spine_leaf(16, 4).oversubscription(), 4.0);
  EXPECT_DOUBLE_EQ(TopologySpec::spine_leaf(16, 16).oversubscription(), 1.0);
  EXPECT_DOUBLE_EQ(TopologySpec::fat_tree(16, 4, 2, 4).oversubscription(), 8.0);
}

TEST(Topology, DeterministicWiring) {
  const TopologySpec spec = TopologySpec::fat_tree(16, 4, 2, 4);
  const TopologyWiring a = build_wiring(spec, 500);
  const TopologyWiring b = build_wiring(spec, 500);
  ASSERT_EQ(a.switches.size(), b.switches.size());
  for (std::size_t i = 0; i < a.switches.size(); ++i) {
    EXPECT_EQ(a.switches[i].n_ports, b.switches[i].n_ports);
  }
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t i = 0; i < a.hosts.size(); ++i) {
    EXPECT_EQ(a.hosts[i].sw, b.hosts[i].sw);
    EXPECT_EQ(a.hosts[i].port, b.hosts[i].port);
  }
  ASSERT_EQ(a.trunks.size(), b.trunks.size());
  for (std::size_t i = 0; i < a.trunks.size(); ++i) {
    EXPECT_EQ(a.trunks[i].sw_a, b.trunks[i].sw_a);
    EXPECT_EQ(a.trunks[i].port_a, b.trunks[i].port_a);
    EXPECT_EQ(a.trunks[i].sw_b, b.trunks[i].sw_b);
    EXPECT_EQ(a.trunks[i].port_b, b.trunks[i].port_b);
    EXPECT_EQ(a.trunks[i].capacity_factor, b.trunks[i].capacity_factor);
  }
}

// The paper's testbed, port for port: 16 hosts + trunk + spare on switch
// A (18 ports), 15 hosts + trunk + spare on B (17 ports), one unscaled
// trunk on the first port past each side's hosts.
TEST(Topology, Figure7Golden) {
  const TopologyWiring w = build_wiring(TopologySpec::figure7(16), 31);
  ASSERT_EQ(w.switches.size(), 2u);
  EXPECT_EQ(w.switches[0].n_ports, 18u);
  EXPECT_EQ(w.switches[1].n_ports, 17u);
  ASSERT_EQ(w.trunks.size(), 1u);
  EXPECT_EQ(w.trunks[0].sw_a, 0u);
  EXPECT_EQ(w.trunks[0].port_a, 16u);
  EXPECT_EQ(w.trunks[0].sw_b, 1u);
  EXPECT_EQ(w.trunks[0].port_b, 15u);
  EXPECT_DOUBLE_EQ(w.trunks[0].capacity_factor, 1.0);
  for (std::size_t i = 0; i < 31; ++i) {
    EXPECT_EQ(w.hosts[i].sw, i < 16 ? 0u : 1u);
    EXPECT_EQ(w.hosts[i].port, i < 16 ? i : i - 16);
  }
  // All 31 hosts fitting on switch A collapses to a single switch.
  const TopologyWiring one = build_wiring(TopologySpec::figure7(64), 31);
  EXPECT_EQ(one.switches.size(), 1u);
  EXPECT_TRUE(one.trunks.empty());
}

// The legacy two-switch cluster construction and the declarative
// figure7() spec must produce indistinguishable simulations: same
// communication time, same event count, packet for packet.
TEST(Topology, DefaultMatchesExplicitFigure7) {
  harness::MulticastRunSpec legacy;
  legacy.n_receivers = 20;
  legacy.message_bytes = 20'000;
  legacy.protocol.packet_size = 4000;
  legacy.protocol.window_size = 4;

  harness::MulticastRunSpec declared = legacy;
  declared.cluster.topology = TopologySpec::figure7();

  const harness::RunResult a = harness::run_multicast(legacy);
  const harness::RunResult b = harness::run_multicast(declared);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.sender.acks_received, b.sender.acks_received);
}

}  // namespace
}  // namespace rmc::net
