// Causal packet tracing: span lifecycle, drop-cause tagging, timeline
// sampling, attribution, Perfetto export shape, and trace determinism
// across sweep parallelism.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/serial.h"
#include "common/trace.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "harness/trace_export.h"
#include "rmcast/wire.h"
#include "sim/simulator.h"

namespace rmc::harness {
namespace {

MulticastRunSpec small_spec(double frame_error_rate, std::uint64_t seed) {
  MulticastRunSpec spec;
  spec.n_receivers = 8;
  spec.message_bytes = 120'000;
  spec.protocol.kind = rmcast::ProtocolKind::kAck;
  spec.protocol.packet_size = 8000;
  spec.protocol.window_size = 8;
  spec.seed = seed;
  spec.cluster.link.frame_error_rate = frame_error_rate;
  return spec;
}

RunResult traced_run(const MulticastRunSpec& base, trace::Tracer& tracer) {
  MulticastRunSpec spec = base;
  spec.tracer = &tracer;
  return run_multicast(spec);
}

TEST(PacketTag, PackUnpackRoundTrip) {
  // Types run to 9 (GROUP_NAK): the tag's type field is four bits wide so
  // the FEC types survive the round trip instead of aliasing onto
  // DATA/ACK (a 3-bit field would fold 8 -> 0 and 9 -> 1).
  for (std::uint8_t type = 1; type <= 9; ++type) {
    for (std::uint32_t seq : {0u, 1u, 12345u, 0x07FF'FFFFu}) {
      const std::uint32_t tag = pack_packet_tag(type, seq);
      EXPECT_TRUE(tag_valid(tag));
      EXPECT_EQ(tag_type(tag), type);
      EXPECT_EQ(tag_seq(tag), seq);
    }
  }
  EXPECT_FALSE(tag_valid(0));
}

TEST(PacketTag, FecWireTypesTagAsThemselves) {
  for (rmcast::PacketType t :
       {rmcast::PacketType::kParity, rmcast::PacketType::kGroupNak}) {
    rmcast::Header h;
    h.type = t;
    h.seq = 321;
    Writer w(rmcast::kHeaderBytes);
    rmcast::write_header(w, h);
    const std::uint32_t tag = tag_rmcast_packet(w.buffer().data(), w.buffer().size());
    ASSERT_TRUE(tag_valid(tag));
    EXPECT_EQ(tag_type(tag), static_cast<std::uint8_t>(t));
    EXPECT_EQ(tag_seq(tag), 321u);
  }
}

TEST(PacketTag, ParsesRmcastWireHeader) {
  rmcast::Header h;
  h.type = rmcast::PacketType::kData;
  h.flags = 0;
  h.node_id = 3;
  h.session = 42;
  h.seq = 77;
  Writer w(rmcast::kHeaderBytes);
  rmcast::write_header(w, h);
  const std::uint32_t tag = tag_rmcast_packet(w.buffer().data(), w.buffer().size());
  ASSERT_TRUE(tag_valid(tag));
  EXPECT_EQ(tag_type(tag), static_cast<std::uint8_t>(rmcast::PacketType::kData));
  EXPECT_EQ(tag_seq(tag), 77u);

  // Too short or nonsense type: not a traced packet.
  EXPECT_EQ(tag_rmcast_packet(w.buffer().data(), 4), 0u);
  Buffer junk(rmcast::kHeaderBytes, 0xEE);
  EXPECT_EQ(tag_rmcast_packet(junk.data(), junk.size()), 0u);
}

TEST(Tracer, TracksAndSeriesAreDenseAndDeduplicated) {
  trace::Tracer t;
  const std::uint16_t a = t.track("sender", trace::TrackTier::kSender);
  const std::uint16_t b = t.track("net.P0.nic", trace::TrackTier::kNet);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(t.track("sender", trace::TrackTier::kSender), a);
  EXPECT_EQ(t.track_name(b), "net.P0.nic");

  EXPECT_EQ(t.series("queue"), 0u);
  EXPECT_EQ(t.series("rate"), 1u);
  EXPECT_EQ(t.series("queue"), 0u);
}

TEST(Tracer, CapacityCapCountsTruncatedEvents) {
  trace::Tracer t;
  const std::uint16_t track = t.track("x", trace::TrackTier::kNet);
  t.set_capacity(2);
  t.record(1, trace::EventKind::kSenderTx, track);
  t.record(2, trace::EventKind::kSenderTx, track);
  t.record(3, trace::EventKind::kSenderTx, track);
  t.sample(4, track, t.series("s"), 1.0);
  EXPECT_EQ(t.events().size(), 2u);
  EXPECT_EQ(t.truncated(), 2u);
  t.clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.truncated(), 0u);
}

TEST(TracedRun, ErrorFreeSpanLifecycle) {
  trace::Tracer tracer;
  const RunResult result = traced_run(small_spec(/*fer=*/0.0, /*seed=*/3), tracer);
  ASSERT_TRUE(result.completed) << result.error;

  // Every data transmission, reception and completion leaves a span event.
  EXPECT_EQ(tracer.count(trace::EventKind::kSenderTx),
            result.sender.data_packets_sent);
  EXPECT_GT(tracer.count(trace::EventKind::kReceiverRx), 0u);
  EXPECT_EQ(tracer.count(trace::EventKind::kComplete), 1u);
  EXPECT_EQ(tracer.count(trace::EventKind::kDeliver), 8u);
  EXPECT_EQ(tracer.count(trace::EventKind::kDrop), 0u);
  // The wire got exercised: the NIC serialized at least one frame per data
  // packet, each enqueue recorded with its queue depth.
  EXPECT_GT(tracer.count(trace::EventKind::kWireTx),
            result.sender.data_packets_sent);
  EXPECT_GT(tracer.count(trace::EventKind::kEnqueue), 0u);

  // Timestamps never run backwards past the recording order per track and
  // sit inside the run.
  const std::int64_t horizon = sim::seconds(result.seconds) + 1;
  for (const auto& e : tracer.events()) {
    EXPECT_GE(e.at, 0);
    EXPECT_LE(e.at, horizon);
  }

  // The attribution horizon is the sender's completion instant, a hair
  // before the simulator's final drain.
  const Attribution attr = attribute(tracer);
  EXPECT_LE(attr.total_seconds, result.seconds);
  EXPECT_GE(attr.total_seconds, 0.95 * result.seconds);
  EXPECT_GE(attr.accounted_fraction(), 0.95);
  EXPECT_EQ(attr.retransmissions, 0u);
  EXPECT_GT(attr.transmit_seconds, 0.0);
}

TEST(TracedRun, LossyRunTagsEveryDropAndAttributesRetransmissions) {
  MulticastRunSpec spec = small_spec(/*fer=*/0.01, /*seed=*/7);
  trace::Tracer tracer;
  const RunResult result = traced_run(spec, tracer);
  ASSERT_TRUE(result.completed) << result.error;
  ASSERT_GT(result.sender.retransmissions, 0u);

  // Every drop the net tier recorded carries a concrete cause.
  std::size_t drops = 0;
  for (const auto& e : tracer.events()) {
    if (e.kind != trace::EventKind::kDrop) continue;
    ++drops;
    EXPECT_NE(e.b, static_cast<std::uint32_t>(trace::DropCause::kUnknown));
    EXPECT_LT(e.b, Attribution::kNumCauses);
  }
  EXPECT_GT(drops, 0u);

  const Attribution attr = attribute(tracer);
  EXPECT_EQ(attr.retransmissions, result.sender.retransmissions);
  // With drops on record, no retransmission is attributed to "unknown".
  EXPECT_EQ(attr.retransmissions_by_cause[0], 0u);
  std::uint64_t by_cause = 0;
  for (std::uint64_t n : attr.retransmissions_by_cause) by_cause += n;
  EXPECT_EQ(by_cause, attr.retransmissions);
  EXPECT_GT(attr.retransmissions_by_cause[static_cast<std::size_t>(
                trace::DropCause::kFrameError)],
            0u);
  EXPECT_GT(attr.loss_recovery_seconds, 0.0);
  EXPECT_GE(attr.accounted_fraction(), 0.95);
}

TEST(TracedRun, TimelineSamplesArriveOnTheConfiguredInterval) {
  MulticastRunSpec spec = small_spec(/*fer=*/0.0, /*seed=*/3);
  spec.timeline_interval = sim::microseconds(500);
  trace::Tracer tracer;
  const RunResult result = traced_run(spec, tracer);
  ASSERT_TRUE(result.completed) << result.error;

  std::size_t samples = 0;
  for (const auto& e : tracer.events()) {
    if (e.kind != trace::EventKind::kSample) continue;
    ++samples;
    EXPECT_EQ(e.at % sim::microseconds(500), 0) << "sample off the grid";
    EXPECT_LT(e.a, tracer.series_names().size());
  }
  // One batch of series per elapsed interval (the run lasts well past one).
  EXPECT_GE(samples, tracer.series_names().size());
  EXPECT_GE(tracer.series_names().size(), 5u);

  // Disabled timelines record no samples.
  MulticastRunSpec off = small_spec(/*fer=*/0.0, /*seed=*/3);
  off.timeline_interval = 0;
  trace::Tracer no_samples;
  ASSERT_TRUE(traced_run(off, no_samples).completed);
  EXPECT_EQ(no_samples.count(trace::EventKind::kSample), 0u);
}

TEST(TracedRun, TracingDoesNotPerturbTheRun) {
  const MulticastRunSpec spec = small_spec(/*fer=*/0.005, /*seed=*/11);

  metrics::Registry plain_metrics;
  MulticastRunSpec plain = spec;
  plain.metrics = &plain_metrics;
  const RunResult bare = run_multicast(plain);

  // Tracing hooks alone: byte-identical everything, including the event
  // count (the timeline sampler is off, so no extra sim events exist).
  metrics::Registry traced_metrics;
  MulticastRunSpec traced = spec;
  traced.metrics = &traced_metrics;
  traced.timeline_interval = 0;
  trace::Tracer tracer;
  traced.tracer = &tracer;
  const RunResult observed = run_multicast(traced);

  ASSERT_TRUE(bare.completed && observed.completed);
  EXPECT_EQ(bare.seconds, observed.seconds);
  EXPECT_EQ(bare.events_executed, observed.events_executed);
  EXPECT_EQ(bare.sender.retransmissions, observed.sender.retransmissions);
  EXPECT_EQ(plain_metrics.to_json(), traced_metrics.to_json());

  // With the sampler on, its read-only ticks add sim events but change
  // nothing the protocol can observe.
  metrics::Registry sampled_metrics;
  MulticastRunSpec sampled = spec;
  sampled.metrics = &sampled_metrics;
  trace::Tracer sampled_tracer;
  sampled.tracer = &sampled_tracer;
  const RunResult with_sampler = run_multicast(sampled);
  ASSERT_TRUE(with_sampler.completed);
  EXPECT_EQ(bare.seconds, with_sampler.seconds);
  EXPECT_EQ(bare.sender.retransmissions, with_sampler.sender.retransmissions);
  EXPECT_EQ(plain_metrics.to_json(), sampled_metrics.to_json());
}

TEST(SweepTrace, FoldedTraceLogIsIdenticalAcrossJobCounts) {
  auto collect = [](std::size_t jobs) {
    auto log = std::make_unique<TraceLog>();
    SweepRunner::Options options;
    options.jobs = jobs;
    options.trace = log.get();
    SweepRunner runner(options);
    for (std::uint64_t seed : {3u, 5u, 7u, 3u}) {  // repeat hits the cache
      runner.submit(small_spec(/*fer=*/0.004, seed),
                    "seed" + std::to_string(seed));
    }
    runner.wait_all();
    return log;
  };

  auto serial = collect(1);
  auto parallel = collect(4);
  ASSERT_EQ(serial->size(), 4u);
  ASSERT_EQ(parallel->size(), 4u);
  for (std::size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ(serial->label(i), parallel->label(i));
    EXPECT_TRUE(serial->tracer(i).same_as(parallel->tracer(i))) << i;
    EXPECT_FALSE(serial->tracer(i).events().empty()) << i;
  }
  // The cached repeat of seed 3 folded the same trace twice.
  EXPECT_TRUE(serial->tracer(0).same_as(serial->tracer(3)));
}

TEST(TraceExport, JsonCarriesEventsAndAttribution) {
  TraceLog log;
  trace::Tracer& tracer = log.add("lossy_point");
  const RunResult result =
      traced_run(small_spec(/*fer=*/0.01, /*seed=*/7), tracer);
  ASSERT_TRUE(result.completed);

  char* data = nullptr;
  std::size_t size = 0;
  FILE* mem = open_memstream(&data, &size);
  log.write_json(mem);
  std::fclose(mem);
  std::string json(data, size);
  free(data);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // wire spans
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counters
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(json.find("lossy_point"), std::string::npos);
  EXPECT_NE(json.find("\"attribution\""), std::string::npos);
  EXPECT_NE(json.find("\"accounted_fraction\""), std::string::npos);
  EXPECT_NE(json.find("frame_error"), std::string::npos);
  EXPECT_NE(json.find("drop:"), std::string::npos);
}

}  // namespace
}  // namespace rmc::harness
